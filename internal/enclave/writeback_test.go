package enclave

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/metadata"
	"nexus/internal/obs"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
)

// faultObjectStore wraps the memory store and, once armed, fails every
// ocall at or past a chosen index with the backend's unavailability
// error — a deterministic stand-in for the store dying mid-batch.
type faultObjectStore struct {
	inner *memObjectStore

	mu        sync.Mutex
	calls     int
	failAfter int // -1 = disarmed
}

func newFaultObjectStore() *faultObjectStore {
	return &faultObjectStore{inner: newMemObjectStore(), failAfter: -1}
}

// armAt makes the k-th ocall from now (0-based) and everything after it
// fail until disarm.
func (s *faultObjectStore) armAt(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAfter = s.calls + k
}

func (s *faultObjectStore) disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAfter = -1
}

func (s *faultObjectStore) tick() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failAfter >= 0 && s.calls >= s.failAfter {
		return backend.ErrUnavailable
	}
	s.calls++
	return nil
}

func (s *faultObjectStore) GetVersioned(name string) ([]byte, uint64, error) {
	if err := s.tick(); err != nil {
		return nil, 0, err
	}
	return s.inner.GetVersioned(name)
}

func (s *faultObjectStore) PutVersioned(name string, data []byte) (uint64, error) {
	if err := s.tick(); err != nil {
		return 0, err
	}
	return s.inner.PutVersioned(name, data)
}

func (s *faultObjectStore) Delete(name string) error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.inner.Delete(name)
}

func (s *faultObjectStore) Lock(name string) (func(), error) {
	if err := s.tick(); err != nil {
		return nil, err
	}
	return s.inner.Lock(name)
}

// wbEnv is a mounted volume with direct access to the platform, so
// tests can attach additional enclaves to the same machine (same
// sealing key) and the same store.
type wbEnv struct {
	platform *sgx.Platform
	enclave  *Enclave
	cfg      Config
	owner    identity
	sealed   []byte
	volID    uuid.UUID
}

// newWbEnv creates a volume on a fresh platform with the given config
// overrides (SGX and Store are filled in; Store defaults to a fresh
// memObjectStore when cfg.Store is nil).
func newWbEnv(t *testing.T, owner identity, cfg Config) *wbEnv {
	t.Helper()
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	container, err := platform.CreateEnclave(nexusImage)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SGX = container
	if cfg.Store == nil {
		cfg.Store = newMemObjectStore()
	}
	encl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := encl.CreateVolume(owner.name, owner.pub)
	if err != nil {
		t.Fatalf("CreateVolume: %v", err)
	}
	volID, err := encl.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, encl, owner, sealed, volID); err != nil {
		t.Fatalf("authenticate: %v", err)
	}
	return &wbEnv{platform: platform, enclave: encl, cfg: cfg, owner: owner, sealed: sealed, volID: volID}
}

// freshEnclave mounts a second enclave on the same platform over the
// given store — the "crash and restart" view: nothing carried over in
// memory, everything read back from the store.
func (env *wbEnv) freshEnclave(t *testing.T, store ObjectStore) *Enclave {
	t.Helper()
	container, err := env.platform.CreateEnclave(nexusImage)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.cfg
	cfg.SGX = container
	cfg.Store = store
	// The restarted view always reads eagerly; only the writer batches.
	cfg.Writeback = WritebackEager
	encl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, encl, env.owner, env.sealed, env.volID); err != nil {
		t.Fatalf("fresh enclave authenticate: %v", err)
	}
	return encl
}

// wbChaosSeed mirrors the AFS chaos suite's NEXUS_CHAOS_SEED override
// so CI can run the same fixed seed matrix over this package.
func wbChaosSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("NEXUS_CHAOS_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("NEXUS_CHAOS_SEED=%q: %v", env, err)
	}
	return seed
}

// dirNames lists a directory of a (possibly fresh) enclave as a set.
func dirNames(t *testing.T, e *Enclave, path string) map[string]bool {
	t.Helper()
	stats, err := e.Filldir(path)
	if err != nil {
		t.Fatalf("Filldir(%s): %v", path, err)
	}
	names := make(map[string]bool, len(stats))
	for _, s := range stats {
		names[s.Name] = true
	}
	return names
}

// TestWritebackFlushBatchFaultSweep is the crash-consistency regression
// for the transactional flushDirnodeLocked and the batch drain: a
// multi-bucket flush is killed at every single ocall index in turn, and
// after each kill (a) a fresh enclave over the surviving store mounts
// and lists an entirely-old or entirely-new directory with no integrity
// error, and (b) clearing the fault and retrying the same drain
// converges the store and the writer's memory.
func TestWritebackFlushBatchFaultSweep(t *testing.T) {
	const files = 12
	for k := 0; ; k++ {
		store := newFaultObjectStore()
		owner := newIdentity(t, "owen")
		// BucketSize 4 forces the root dirnode flush to rewrite several
		// buckets, exercising the multi-object commit.
		env := newWbEnv(t, owner, Config{Store: store, BucketSize: 4, Writeback: WritebackOn})
		e := env.enclave
		for i := 0; i < files; i++ {
			if err := e.Touch(fmt.Sprintf("/f%02d", i)); err != nil {
				t.Fatalf("k=%d: Touch: %v", k, err)
			}
		}
		if got := len(dirNames(t, e, "/")); got != files {
			t.Fatalf("k=%d: writer sees %d entries before drain, want %d", k, got, files)
		}

		store.armAt(k)
		err := e.SyncMetadata()
		if err == nil {
			// k is past the drain's last ocall: the batch completed and
			// the sweep has covered every index.
			store.disarm()
			fresh := env.freshEnclave(t, store)
			if got := dirNames(t, fresh, "/"); len(got) != files {
				t.Fatalf("k=%d: complete drain lost entries: %d of %d", k, len(got), files)
			}
			if k == 0 {
				t.Fatal("fault at ocall 0 did not fail the drain")
			}
			return
		}
		if !errors.Is(err, ErrStoreUnavailable) {
			t.Fatalf("k=%d: drain failed with %v, want ErrStoreUnavailable", k, err)
		}

		// Crash view: a restarted enclave over whatever the store holds
		// must mount and list cleanly — all files or none of them.
		store.disarm()
		fresh := env.freshEnclave(t, store)
		names := dirNames(t, fresh, "/")
		if len(names) != 0 && len(names) != files {
			t.Fatalf("k=%d: torn directory after mid-batch fault: %d of %d entries", k, len(names), files)
		}

		// Retry view: the same writer drains again and everything lands.
		if err := e.SyncMetadata(); err != nil {
			t.Fatalf("k=%d: retried drain: %v", k, err)
		}
		fresh2 := env.freshEnclave(t, store)
		if got := dirNames(t, fresh2, "/"); len(got) != files {
			t.Fatalf("k=%d: retried drain converged to %d of %d entries", k, len(got), files)
		}
		if got := dirNames(t, e, "/"); len(got) != files {
			t.Fatalf("k=%d: writer's view diverged after retry: %d entries", k, len(got))
		}
		if k > 500 {
			t.Fatal("fault sweep did not terminate")
		}
	}
}

// TestChaosWritebackKillMidFlush kills the store at a seeded random
// ocall during a write-back drain of a mixed create workload, restarts
// (fresh enclave, surviving store), and asserts the tree is readable
// and untorn; then the writer retries and both views converge.
func TestChaosWritebackKillMidFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(wbChaosSeed(t)))
	for round := 0; round < 5; round++ {
		store := newFaultObjectStore()
		owner := newIdentity(t, "owen")
		env := newWbEnv(t, owner, Config{Store: store, BucketSize: 8, Writeback: WritebackOn})
		e := env.enclave

		files := 4 + rng.Intn(12)
		if err := e.Mkdir("/d"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("/d/f%02d", i)
			if err := e.Touch(p); err != nil {
				t.Fatal(err)
			}
			if err := e.WriteFile(p, []byte(fmt.Sprintf("round %d file %d", round, i))); err != nil {
				t.Fatal(err)
			}
		}

		store.armAt(rng.Intn(20))
		err := e.SyncMetadata()
		store.disarm()

		// Crash-and-restart view: must mount, and every directory it
		// lists must resolve (no dangling entries, no integrity errors).
		fresh := env.freshEnclave(t, store)
		root := dirNames(t, fresh, "/")
		if root["d"] {
			names := dirNames(t, fresh, "/d")
			if len(names) != 0 && len(names) != files {
				t.Fatalf("round %d: torn /d after kill: %d of %d", round, len(names), files)
			}
			for name := range names {
				if _, err := fresh.ReadFile("/d/" + name); err != nil {
					t.Fatalf("round %d: reading %s after kill: %v", round, name, err)
				}
			}
		}

		// The fault may have landed after the drain finished; either way
		// a retry must converge.
		if err != nil {
			if !errors.Is(err, ErrStoreUnavailable) {
				t.Fatalf("round %d: drain failed with %v", round, err)
			}
			if err := e.SyncMetadata(); err != nil {
				t.Fatalf("round %d: retried drain: %v", round, err)
			}
		}
		fresh2 := env.freshEnclave(t, store)
		if got := dirNames(t, fresh2, "/d"); len(got) != files {
			t.Fatalf("round %d: converged to %d of %d entries", round, len(got), files)
		}
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("/d/f%02d", i)
			want := fmt.Sprintf("round %d file %d", round, i)
			got, err := fresh2.ReadFile(p)
			if err != nil {
				t.Fatalf("round %d: %s: %v", round, p, err)
			}
			if string(got) != want {
				t.Fatalf("round %d: %s = %q, want %q", round, p, got, want)
			}
		}
	}
}

// treeEntry is one node of a logical volume snapshot.
type treeEntry struct {
	kind    string
	content string
}

// snapshotTree walks an enclave's volume from the root and returns the
// logical tree: every path with its kind and (for files) content.
func snapshotTree(t *testing.T, e *Enclave, dir string) map[string]treeEntry {
	t.Helper()
	out := make(map[string]treeEntry)
	var walk func(p string)
	walk = func(p string) {
		stats, err := e.Filldir(p)
		if err != nil {
			t.Fatalf("Filldir(%s): %v", p, err)
		}
		for _, s := range stats {
			child := p + "/" + s.Name
			if p == "/" {
				child = "/" + s.Name
			}
			switch {
			case s.Kind == metadata.KindDir:
				out[child] = treeEntry{kind: "dir"}
				walk(child)
			case s.Kind == metadata.KindSymlink:
				out[child] = treeEntry{kind: "symlink", content: s.SymlinkTarget}
			default:
				data, err := e.ReadFile(child)
				if err != nil {
					t.Fatalf("ReadFile(%s): %v", child, err)
				}
				out[child] = treeEntry{kind: "file", content: string(data)}
			}
		}
	}
	walk(dir)
	return out
}

// TestPropertyWritebackModesConverge drives the same seeded workload
// through a write-back enclave and an eager one and asserts that, after
// a quiescing SyncMetadata, the persisted volumes are logically
// identical: a fresh enclave over each store sees the same tree
// (paths, kinds, contents) and hence the same reachable object counts.
func TestPropertyWritebackModesConverge(t *testing.T) {
	seed := wbChaosSeed(t)
	run := func(mode WritebackMode) (map[string]treeEntry, *wbEnv) {
		owner := newIdentity(t, "owen")
		env := newWbEnv(t, owner, Config{BucketSize: 8, Writeback: mode})
		e := env.enclave
		rng := rand.New(rand.NewSource(seed))
		var dirs = []string{""}
		var files []string
		for op := 0; op < 80; op++ {
			switch r := rng.Intn(10); {
			case r < 2: // mkdir
				d := fmt.Sprintf("%s/d%03d", dirs[rng.Intn(len(dirs))], op)
				if err := e.Mkdir(d); err != nil {
					t.Fatalf("%s Mkdir(%s): %v", mode, d, err)
				}
				dirs = append(dirs, d)
			case r < 6: // create + write
				p := fmt.Sprintf("%s/f%03d", dirs[rng.Intn(len(dirs))], op)
				if err := e.Touch(p); err != nil {
					t.Fatalf("%s Touch(%s): %v", mode, p, err)
				}
				if err := e.WriteFile(p, []byte(fmt.Sprintf("op %d", op))); err != nil {
					t.Fatalf("%s WriteFile(%s): %v", mode, p, err)
				}
				files = append(files, p)
			case r < 8 && len(files) > 0: // rewrite
				p := files[rng.Intn(len(files))]
				if err := e.WriteFile(p, []byte(fmt.Sprintf("rewrite %d", op))); err != nil {
					t.Fatalf("%s rewrite(%s): %v", mode, p, err)
				}
			case len(files) > 0: // remove
				i := rng.Intn(len(files))
				if err := e.Remove(files[i]); err != nil {
					t.Fatalf("%s Remove(%s): %v", mode, files[i], err)
				}
				files = append(files[:i], files[i+1:]...)
			}
		}
		if err := e.SyncMetadata(); err != nil {
			t.Fatalf("%s SyncMetadata: %v", mode, err)
		}
		// Read the tree through a restarted enclave so the comparison is
		// about persisted store state, not the writer's memory.
		fresh := env.freshEnclave(t, env.cfg.Store)
		return snapshotTree(t, fresh, "/"), env
	}

	wbTree, _ := run(WritebackOn)
	eagerTree, _ := run(WritebackOff)
	if len(wbTree) != len(eagerTree) {
		t.Fatalf("tree sizes diverge: writeback %d, eager %d", len(wbTree), len(eagerTree))
	}
	for p, want := range eagerTree {
		got, ok := wbTree[p]
		if !ok {
			t.Fatalf("path %s missing from write-back tree", p)
		}
		if got != want {
			t.Fatalf("path %s: writeback %+v, eager %+v", p, got, want)
		}
	}
}

// TestCacheHitVersionSurvivesFreshnessLoss is the regression for the
// cache-hit version bug: loadDirnode used to return e.freshness[id] on
// a cache hit, which is 0 once the freshness entry is gone, making the
// next flush write version 1 and torch the object's history.
func TestCacheHitVersionSurvivesFreshnessLoss(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	root := e.super.RootDir
	_, v1, err := e.loadDirnode(root, e.super.VolumeUUID)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == 0 {
		t.Fatal("root dirnode version 0 after a flush")
	}
	// Simulate freshness-map loss (e.g. an eviction strategy or a future
	// partial reload): the cached copy must still report its preamble
	// version, not the missing map entry.
	delete(e.freshness, root)
	hitsBefore := e.metrics.metadataCacheHits.Value()
	_, v2, err := e.loadDirnode(root, e.super.VolumeUUID)
	if err != nil {
		t.Fatal(err)
	}
	if e.metrics.metadataCacheHits.Value() == hitsBefore {
		t.Fatal("second load missed the cache; test is not exercising the hit path")
	}
	if v2 != v1 {
		t.Fatalf("cache hit returned version %d, want %d", v2, v1)
	}
}

// TestEPCReturnsToZeroAfterRemove audits the enclave's EPC accounting
// across a create/write/remove cycle in both flush modes: once the
// caches are dropped and the dirty set drained, every byte charged for
// cached or pinned metadata must be back with the platform.
func TestEPCReturnsToZeroAfterRemove(t *testing.T) {
	for _, mode := range []WritebackMode{WritebackOff, WritebackOn} {
		t.Run(string("mode="+mode), func(t *testing.T) {
			owner := newIdentity(t, "owen")
			env := newWbEnv(t, owner, Config{Writeback: mode})
			e := env.enclave
			e.DropCaches()
			baseline := e.sgx.HeapEPC()

			for i := 0; i < 8; i++ {
				p := fmt.Sprintf("/f%d", i)
				if err := e.Touch(p); err != nil {
					t.Fatal(err)
				}
				if err := e.WriteFile(p, []byte("payload")); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Mkdir("/d"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if err := e.Remove(fmt.Sprintf("/f%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Remove("/d"); err != nil {
				t.Fatal(err)
			}
			if err := e.SyncMetadata(); err != nil {
				t.Fatal(err)
			}
			e.DropCaches()
			if got := e.sgx.HeapEPC(); got != baseline {
				t.Fatalf("HeapEPC = %d after cycle, want baseline %d (leak of %d bytes)", got, baseline, got-baseline)
			}
		})
	}
}

// TestWritebackFlushReduction asserts the headline win: the same
// metadata-heavy workload issues well under 70% of eager mode's
// metadata flushes when batched.
func TestWritebackFlushReduction(t *testing.T) {
	const files = 24
	run := func(mode WritebackMode) int64 {
		owner := newIdentity(t, "owen")
		env := newWbEnv(t, owner, Config{Writeback: mode})
		e := env.enclave
		before := e.Stats().MetadataFlushes
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("/f%02d", i)
			if err := e.Touch(p); err != nil {
				t.Fatal(err)
			}
			if err := e.WriteFile(p, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.SyncMetadata(); err != nil {
			t.Fatal(err)
		}
		return e.Stats().MetadataFlushes - before
	}
	wb := run(WritebackOn)
	eager := run(WritebackOff)
	if wb <= 0 || eager <= 0 {
		t.Fatalf("flush counters did not move: writeback %d, eager %d", wb, eager)
	}
	if float64(wb) >= 0.7*float64(eager) {
		t.Fatalf("writeback used %d flushes vs eager %d; want < 70%%", wb, eager)
	}
}

// TestWritebackObservability checks the instrumentation contract: dirty
// marks move enclave_metadata_dirty_total and the gauge, a drain bumps
// enclave_flush_batches_total, zeroes the gauge, and emits an
// enclave.flush_batch span tagged with the batch size.
func TestWritebackObservability(t *testing.T) {
	reg := obs.NewRegistry()
	owner := newIdentity(t, "owen")
	env := newWbEnv(t, owner, Config{Writeback: WritebackOn, Obs: reg})
	e := env.enclave

	reg.Tracer().Enable()
	defer reg.Tracer().Disable()

	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if reg.CounterValue("enclave_metadata_dirty_total") == 0 {
		t.Fatal("enclave_metadata_dirty_total did not move on Touch")
	}
	if reg.GaugeValue("enclave_metadata_dirty") == 0 {
		t.Fatal("enclave_metadata_dirty gauge is zero with pending metadata")
	}
	batchesBefore := reg.CounterValue("enclave_flush_batches_total")
	if err := e.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	if reg.CounterValue("enclave_flush_batches_total") != batchesBefore+1 {
		t.Fatal("enclave_flush_batches_total did not increment on drain")
	}
	if g := reg.GaugeValue("enclave_metadata_dirty"); g != 0 {
		t.Fatalf("enclave_metadata_dirty gauge = %d after drain, want 0", g)
	}

	var batch *obs.Span
	var find func(spans []*obs.Span)
	find = func(spans []*obs.Span) {
		for _, s := range spans {
			if s.Name == "enclave.flush_batch" {
				batch = s
			}
			find(s.Children)
		}
	}
	find(reg.Tracer().Take())
	if batch == nil {
		t.Fatal("no enclave.flush_batch span recorded")
	}
	tags := make(map[string]bool)
	for _, tag := range batch.Tags {
		tags[tag.Key] = true
	}
	for _, want := range []string{"objects", "ops", "deletes"} {
		if !tags[want] {
			t.Fatalf("flush_batch span missing tag %q (have %v)", want, batch.Tags)
		}
	}
}

// TestWritebackHighWaterDrain checks that the op-count high-water mark
// drains the set inline, without an explicit barrier.
func TestWritebackHighWaterDrain(t *testing.T) {
	owner := newIdentity(t, "owen")
	env := newWbEnv(t, owner, Config{Writeback: WritebackOn, WritebackMaxOps: 8})
	e := env.enclave
	for i := 0; i < 16; i++ {
		if err := e.Touch(fmt.Sprintf("/f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	e.mu.Lock()
	batches := e.metrics.flushBatches.Value()
	e.mu.Unlock()
	if batches == 0 {
		t.Fatal("high-water mark never drained the dirty set")
	}
}

// TestWritebackRemovePendingCreateLeavesNoResidue removes a file that
// only ever existed in the dirty set: the drain must not upload it, and
// the store must hold nothing for it.
func TestWritebackRemovePendingCreateLeavesNoResidue(t *testing.T) {
	store := newMemObjectStore()
	owner := newIdentity(t, "owen")
	env := newWbEnv(t, owner, Config{Store: store, Writeback: WritebackOn})
	e := env.enclave
	if err := e.Touch("/ghost"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/ghost", []byte("ectoplasm")); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("/ghost"); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	fresh := env.freshEnclave(t, store)
	if names := dirNames(t, fresh, "/"); names["ghost"] {
		t.Fatal("cancelled pending create reached the store")
	}
	if _, err := fresh.ReadFile("/ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadFile(ghost) = %v, want ErrNotFound", err)
	}
}

// attachEnclave mounts another live client on the same platform and
// store with its own flush mode — the concurrent-writer view.
func (env *wbEnv) attachEnclave(t *testing.T, mode WritebackMode) *Enclave {
	t.Helper()
	container, err := env.platform.CreateEnclave(nexusImage)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.cfg
	cfg.SGX = container
	cfg.Writeback = mode
	encl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, encl, env.owner, env.sealed, env.volID); err != nil {
		t.Fatalf("attached enclave authenticate: %v", err)
	}
	return encl
}

// TestWritebackConcurrentDrainMergesOpLog exercises the drain's merge
// path: a second client advances the root dirnode between the first
// client's marks and its drain, so the drain must replay its op log
// (inserts, a conflicting insert, a remove) onto the fresh copy instead
// of clobbering the other client's entries.
func TestWritebackConcurrentDrainMergesOpLog(t *testing.T) {
	owner := newIdentity(t, "owen")
	env := newWbEnv(t, owner, Config{Writeback: WritebackOn})
	a := env.enclave
	if err := a.Touch("/seed"); err != nil {
		t.Fatal(err)
	}
	if err := a.SyncMetadata(); err != nil {
		t.Fatal(err)
	}

	b := env.attachEnclave(t, WritebackOn)
	if err := b.Touch("/b"); err != nil {
		t.Fatal(err)
	}
	if err := b.Touch("/same"); err != nil {
		t.Fatal(err)
	}

	// a batches against the pre-b version of the root...
	if err := a.Touch("/a"); err != nil {
		t.Fatal(err)
	}
	if err := a.Touch("/same"); err != nil {
		t.Fatal(err)
	}
	if err := a.Remove("/seed"); err != nil {
		t.Fatal(err)
	}
	// ...b publishes first, advancing the store...
	if err := b.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	// ...so a's drain must merge, not overwrite.
	if err := a.SyncMetadata(); err != nil {
		t.Fatal(err)
	}

	fresh := env.freshEnclave(t, env.cfg.Store)
	names := dirNames(t, fresh, "/")
	for _, want := range []string{"a", "b", "same"} {
		if !names[want] {
			t.Fatalf("entry %q lost in merge (have %v)", want, names)
		}
	}
	if names["seed"] {
		t.Fatal("removed entry survived the merge")
	}
	if _, err := fresh.ReadFile("/same"); err != nil {
		t.Fatalf("conflicting insert left a dangling entry: %v", err)
	}
}

// TestWritebackRemoveVariants walks Remove's write-back branches:
// on-store directories and files (staged deletes), hardlinked files
// (eager link-count decrement), symlinks, pending directories
// (cancelled creates), and missing paths.
func TestWritebackRemoveVariants(t *testing.T) {
	store := newMemObjectStore()
	owner := newIdentity(t, "owen")
	env := newWbEnv(t, owner, Config{Store: store, Writeback: WritebackOn})
	e := env.enclave

	// On-store directory and file.
	if err := e.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/file"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/file", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("/file"); err != nil {
		t.Fatal(err)
	}

	// Hardlinked file: the first unlink only drops the link count.
	if err := e.Touch("/h"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/h", []byte("linked")); err != nil {
		t.Fatal(err)
	}
	if err := e.Hardlink("/h", "/h2"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("/h"); err != nil {
		t.Fatal(err)
	}
	if data, err := e.ReadFile("/h2"); err != nil || string(data) != "linked" {
		t.Fatalf("surviving hardlink read = %q, %v", data, err)
	}
	if err := e.Remove("/h2"); err != nil {
		t.Fatal(err)
	}

	// Symlink: entry-only create and remove.
	if err := e.Symlink("/file", "/sl"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("/sl"); err != nil {
		t.Fatal(err)
	}

	// Pending directory: cancelled before it ever reaches the store.
	if err := e.Mkdir("/pending"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("/pending"); err != nil {
		t.Fatal(err)
	}

	// Error branches.
	if err := e.Remove("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove(missing) = %v, want ErrNotFound", err)
	}
	if err := e.Touch("/file2"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/file2"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Touch = %v, want ErrExists", err)
	}

	if err := e.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	fresh := env.freshEnclave(t, store)
	names := dirNames(t, fresh, "/")
	if len(names) != 1 || !names["file2"] {
		t.Fatalf("final tree = %v, want just file2", names)
	}
	if !e.WritebackEnabled() {
		t.Fatal("WritebackEnabled() = false on a write-back enclave")
	}
	if fresh.WritebackEnabled() {
		t.Fatal("WritebackEnabled() = true on an eager enclave")
	}
}

// TestWritebackEPCPressureForcesDrain exhausts the platform's EPC so
// the dirty-set charge fails: the mark must still succeed, flag
// pressure, and force an inline drain that publishes the entry.
func TestWritebackEPCPressureForcesDrain(t *testing.T) {
	store := newMemObjectStore()
	owner := newIdentity(t, "owen")
	env := newWbEnv(t, owner, Config{Store: store, Writeback: WritebackOn})
	e := env.enclave

	// Grab the remaining EPC budget (binary descent, so the hog ends
	// within one byte of the true remainder).
	var hog int64
	for chunk := int64(1 << 32); chunk >= 1; chunk /= 2 {
		for e.sgx.AllocEPC(chunk) == nil {
			hog += chunk
		}
	}
	if err := e.Touch("/pressured"); err != nil {
		t.Fatalf("Touch under EPC pressure: %v", err)
	}
	e.sgx.FreeEPC(hog)

	e.mu.Lock()
	pendingNodes := len(e.wb.nodes)
	e.mu.Unlock()
	if pendingNodes != 0 {
		t.Fatalf("%d dirty nodes still pending; EPC pressure did not drain", pendingNodes)
	}
	fresh := env.freshEnclave(t, store)
	if names := dirNames(t, fresh, "/"); !names["pressured"] {
		t.Fatalf("pressure-drained entry missing from store view: %v", names)
	}
}
