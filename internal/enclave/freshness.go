package enclave

import (
	"fmt"

	"nexus/internal/metadata"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// The optional volume-wide freshness table implements the mitigation the
// paper sketches for rollback/forking attacks (§VI-C): per-object
// version counters detect rollback of objects an enclave has already
// seen, but a malicious server can still serve a consistent *old*
// snapshot to a client that has seen nothing newer. Recording every
// object's current version in a single authenticated table — itself
// versioned and updated transactionally with every metadata write —
// extends rollback detection to the whole hierarchy: re-serving any
// stale object then fails the table comparison.
//
// The paper leaves this to future work because of its cost: every
// metadata update must additionally lock, rewrite, and upload the table
// (the "root hash" synchronization concern). The implementation here is
// exactly that single-root design, gated behind Config.FreshnessTree,
// and the ablation benchmark quantifies the overhead. Forking attacks
// against *newly joining* clients (who have no local state at all)
// remain out of scope, as in the paper.

// FreshnessObjectName is the store name of the freshness table.
const FreshnessObjectName = "freshness"

// freshTable is the volume-wide version table.
type freshTable struct {
	// Seq is the table's own update counter.
	Seq uint64
	// Versions records the latest sealed version of every metadata
	// object, keyed by UUID.
	Versions map[uuid.UUID]uint64
}

func newFreshTable() *freshTable {
	return &freshTable{Versions: make(map[uuid.UUID]uint64)}
}

func (t *freshTable) encode() []byte {
	w := serial.NewWriter(16 + 24*len(t.Versions))
	w.WriteUint64(t.Seq)
	w.WriteUint32(uint32(len(t.Versions)))
	for id, v := range t.Versions {
		w.WriteRaw(id[:])
		w.WriteUint64(v)
	}
	return w.Bytes()
}

func decodeFreshTable(body []byte) (*freshTable, error) {
	r := serial.NewReader(body)
	t := newFreshTable()
	t.Seq = r.ReadUint64("freshness seq")
	n := r.ReadCount(0, "freshness entries")
	for i := 0; i < n; i++ {
		var id uuid.UUID
		r.ReadRawInto(id[:], "freshness uuid")
		t.Versions[id] = r.ReadUint64("freshness version")
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding freshness table: %w", err)
	}
	return t, nil
}

// loadFreshTableLocked fetches and verifies the freshness table. A
// missing table is an empty one (fresh volume).
func (e *Enclave) loadFreshTableLocked() (*freshTable, error) {
	blob, _, err := e.fetchObject(FreshnessObjectName)
	if err != nil {
		if isNotExist(err) {
			return newFreshTable(), nil
		}
		return nil, fmt.Errorf("fetching freshness table: %w", err)
	}
	p, body, err := metadata.Open(e.rootKey, blob)
	if err != nil {
		return nil, fmt.Errorf("verifying freshness table: %w", err)
	}
	if p.Type != metadata.TypeFreshness {
		return nil, fmt.Errorf("%w: freshness object has type %s", metadata.ErrTampered, p.Type)
	}
	t, err := decodeFreshTable(body)
	if err != nil {
		return nil, err
	}
	if t.Seq != p.Version {
		return nil, fmt.Errorf("%w: freshness table seq %d != sealed version %d",
			metadata.ErrTampered, t.Seq, p.Version)
	}
	// The table itself is rollback-protected by the enclave's local
	// memory of its sequence number.
	if last, ok := e.freshness[freshTableID]; ok && t.Seq < last {
		return nil, fmt.Errorf("%w: freshness table seq %d < seen %d", ErrStaleMetadata, t.Seq, last)
	}
	e.freshness[freshTableID] = t.Seq
	return t, nil
}

// freshTableID keys the table's own version in the enclave-local
// freshness map.
var freshTableID = uuid.UUID{0xff, 0xfe}

// recordFreshnessLocked notes that objects now carry the given versions,
// rewriting the volume-wide table. Callers already hold the relevant
// metadata locks; the table has its own store lock to serialize
// concurrent writers.
func (e *Enclave) recordFreshnessLocked(updates map[uuid.UUID]uint64) error {
	if !e.cfg.FreshnessTree && !e.cfg.FreshnessMerkle {
		return nil
	}
	// During a write-back batch drain the per-object updates collect in
	// freshSink and the table (or merkle root) is rewritten once at the
	// end of the batch (drainLocked); a stale-low entry is safe in the
	// interim — checkFreshnessLocked only rejects versions *below* it.
	if e.freshSink != nil {
		for id, v := range updates {
			e.freshSink[id] = v
		}
		return nil
	}
	if e.cfg.FreshnessMerkle {
		return e.recordFreshnessMerkleLocked(updates)
	}
	release, err := e.lockObject(FreshnessObjectName)
	if err != nil {
		return fmt.Errorf("locking freshness table: %w", err)
	}
	defer release()

	t, err := e.loadFreshTableLocked()
	if err != nil {
		return err
	}
	for id, v := range updates {
		if v == 0 {
			delete(t.Versions, id)
		} else {
			t.Versions[id] = v
		}
	}
	t.Seq++
	blob, err := metadata.Seal(e.rootKey, metadata.Preamble{
		Type:    metadata.TypeFreshness,
		UUID:    freshTableID,
		Version: t.Seq,
	}, t.encode())
	if err != nil {
		return fmt.Errorf("sealing freshness table: %w", err)
	}
	if _, err := e.putObject(FreshnessObjectName, blob); err != nil {
		return fmt.Errorf("uploading freshness table: %w", err)
	}
	e.freshness[freshTableID] = t.Seq
	e.metrics.metadataFlushes.Inc()
	e.metrics.metadataBytes.Add(int64(len(blob)))
	return nil
}

// checkFreshnessLocked verifies a loaded object's version against the
// volume-wide table (when enabled). Unknown objects pass — they are
// newer than the last table the attacker could have recorded, and their
// own AEAD protects them.
func (e *Enclave) checkFreshnessLocked(id uuid.UUID, version uint64) error {
	if e.cfg.FreshnessMerkle {
		return e.checkFreshnessMerkleLocked(id, version)
	}
	if !e.cfg.FreshnessTree {
		return nil
	}
	t, err := e.loadFreshTableLocked()
	if err != nil {
		return err
	}
	want, ok := t.Versions[id]
	if !ok {
		return nil
	}
	if version < want {
		return fmt.Errorf("%w: object %s at version %d, freshness table requires %d",
			ErrStaleMetadata, id, version, want)
	}
	return nil
}

// noteSeenLocked records the newest seen version of an object in the
// per-object freshness map. Merkle mode keeps no per-object state — the
// root commitment subsumes the map — so it is a no-op there; that empty
// map is exactly the O(1) enclave-residency the mode exists for.
func (e *Enclave) noteSeenLocked(id uuid.UUID, version uint64) {
	if e.cfg.FreshnessMerkle {
		return
	}
	e.freshness[id] = version
}
