// Adversarial rollback/fork suite for merkle freshness mode
// (Config.FreshnessMerkle, DESIGN.md §15). The store and the proof
// channel are both controlled by a malicious server here; every attack
// must fail closed with a typed error — ErrStaleObject for proven
// rollbacks and forks, ErrBadProof for proofs that do not verify —
// never be silently accepted.
//
// The suite lives in an external test package so it can stack the real
// untrusted-side plumbing (vfs.FreshnessStore) under the enclave, the
// exact configuration nexus.NewClient builds.
package enclave_test

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/merkle"
	"nexus/internal/obs"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
	"nexus/internal/vfs"
)

// rollbackImage is the shared enclave measurement: sealed blobs only
// unseal across instances when platform and measurement both match.
var rollbackImage = sgx.Image{Name: "nexus-enclave", Version: 1, Code: []byte("nexus enclave code v1")}

// rawStore is a versioned in-memory object store with the two powers a
// malicious server has: substituting what a read returns (onGet) and
// rewinding its entire state to an earlier snapshot.
type rawStore struct {
	mu    sync.Mutex
	data  map[string][]byte
	vers  map[string]uint64
	onGet func(name string, data []byte, version uint64) ([]byte, uint64)
}

func newRawStore() *rawStore {
	return &rawStore{data: map[string][]byte{}, vers: map[string]uint64{}}
}

func (s *rawStore) GetVersioned(name string) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.data[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	b = append([]byte(nil), b...)
	v := s.vers[name]
	if s.onGet != nil {
		b, v = s.onGet(name, b, v)
	}
	return b, v, nil
}

func (s *rawStore) PutVersioned(name string, data []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[name] = append([]byte(nil), data...)
	s.vers[name]++
	return s.vers[name], nil
}

func (s *rawStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, name)
	delete(s.vers, name)
	return nil
}

func (s *rawStore) Lock(name string) (func(), error) { return func() {}, nil }

func (s *rawStore) setOnGet(f func(name string, data []byte, version uint64) ([]byte, uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onGet = f
}

type storeSnapshot struct {
	data map[string][]byte
	vers map[string]uint64
}

func (s *rawStore) snapshot() storeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := storeSnapshot{data: map[string][]byte{}, vers: map[string]uint64{}}
	for n, b := range s.data {
		snap.data[n] = append([]byte(nil), b...)
		snap.vers[n] = s.vers[n]
	}
	return snap
}

// restore rewinds the store to snap, except for names in keep (objects
// the attacker chooses not to — or cannot usefully — regress).
func (s *rawStore) restore(snap storeSnapshot, keep ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := map[string]bool{}
	for _, n := range keep {
		kept[n] = true
	}
	for n := range s.data {
		if !kept[n] {
			delete(s.data, n)
			delete(s.vers, n)
		}
	}
	for n, b := range snap.data {
		if !kept[n] {
			s.data[n] = append([]byte(nil), b...)
			s.vers[n] = snap.vers[n]
		}
	}
}

// proofMangler sits between the enclave and the honest proof store: the
// malicious proof channel. Its inner store is swappable (a "server
// restart" onto different state under a live client), and mangle
// rewrites every served proof.
type proofMangler struct {
	mu     sync.Mutex
	inner  enclave.FreshnessProofStore
	mangle func(id uuid.UUID, proof []byte) []byte
}

func newProofMangler(inner enclave.FreshnessProofStore) *proofMangler {
	return &proofMangler{inner: inner}
}

func (m *proofMangler) get() (enclave.FreshnessProofStore, func(uuid.UUID, []byte) []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner, m.mangle
}

func (m *proofMangler) setInner(inner enclave.FreshnessProofStore) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner = inner
}

func (m *proofMangler) setMangle(f func(uuid.UUID, []byte) []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mangle = f
}

func (m *proofMangler) GetVersioned(name string) ([]byte, uint64, error) {
	inner, _ := m.get()
	return inner.GetVersioned(name)
}

func (m *proofMangler) PutVersioned(name string, data []byte) (uint64, error) {
	inner, _ := m.get()
	return inner.PutVersioned(name, data)
}

func (m *proofMangler) Delete(name string) error {
	inner, _ := m.get()
	return inner.Delete(name)
}

func (m *proofMangler) Lock(name string) (func(), error) {
	inner, _ := m.get()
	return inner.Lock(name)
}

func (m *proofMangler) FreshnessProof(id uuid.UUID, epoch uint64) ([]byte, error) {
	inner, mangle := m.get()
	p, err := inner.FreshnessProof(id, epoch)
	if err != nil {
		return nil, err
	}
	if mangle != nil {
		p = mangle(id, p)
	}
	return p, nil
}

func (m *proofMangler) FreshnessUpdate(epoch uint64, updates []merkle.LeafUpdate) ([][]byte, error) {
	inner, _ := m.get()
	return inner.FreshnessUpdate(epoch, updates)
}

// merkleClient is one mounted NEXUS client in merkle freshness mode,
// with handles on every layer the adversary controls.
type merkleClient struct {
	ias    *sgx.AttestationService
	plat   *sgx.Platform
	raw    *rawStore
	proofs *proofMangler
	reg    *obs.Registry
	encl   *enclave.Enclave
	sealed []byte
	volID  uuid.UUID
	pub    ed25519.PublicKey
	priv   ed25519.PrivateKey
}

func newMerkleClient(t *testing.T) *merkleClient {
	t.Helper()
	ias, err := sgx.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	plat, err := sgx.NewPlatform(sgx.PlatformConfig{}, ias)
	if err != nil {
		t.Fatal(err)
	}
	raw := newRawStore()
	c := &merkleClient{
		ias:    ias,
		plat:   plat,
		raw:    raw,
		proofs: newProofMangler(vfs.NewFreshnessStore(raw)),
		reg:    obs.NewRegistry(),
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c.pub, c.priv = pub, priv
	c.encl = c.newEnclave(t, c.proofs)
	sealed, err := c.encl.CreateVolume("owen", pub)
	if err != nil {
		t.Fatal(err)
	}
	c.sealed = sealed
	if c.volID, err = c.encl.VolumeUUID(); err != nil {
		t.Fatal(err)
	}
	if err := c.mount(c.encl); err != nil {
		t.Fatal(err)
	}
	return c
}

// newEnclave stands up a fresh enclave instance (same platform and
// measurement, so sealed state carries over) on the given store.
func (c *merkleClient) newEnclave(t *testing.T, store enclave.ObjectStore) *enclave.Enclave {
	t.Helper()
	container, err := c.plat.CreateEnclave(rollbackImage)
	if err != nil {
		t.Fatal(err)
	}
	e, err := enclave.New(enclave.Config{
		SGX:             container,
		Store:           store,
		IAS:             c.ias,
		FreshnessMerkle: true,
		Obs:             c.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func (c *merkleClient) mount(e *enclave.Enclave) error {
	nonce, blob, err := e.BeginAuth(c.pub, c.sealed, c.volID)
	if err != nil {
		return err
	}
	msg := append(append([]byte(nil), nonce...), blob...)
	return e.CompleteAuth(ed25519.Sign(c.priv, msg))
}

// TestMerkleModeNormalOperation is the sanity baseline: ordinary
// operations succeed, proofs are verified (the counters move), and a
// fresh enclave instance re-mounts and reads everything back.
func TestMerkleModeNormalOperation(t *testing.T) {
	c := newMerkleClient(t)
	if err := c.encl.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := c.encl.Touch("/docs/f"); err != nil {
		t.Fatal(err)
	}
	if err := c.encl.WriteFile("/docs/f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c.encl.DropCaches()
	got, err := c.encl.ReadFile("/docs/f")
	if err != nil || string(got) != "payload" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if n := c.reg.CounterValue("enclave_freshness_proofs_total"); n == 0 {
		t.Fatal("no proofs verified")
	}
	if n := c.reg.CounterValue("enclave_freshness_proof_bytes_total"); n == 0 {
		t.Fatal("no proof bytes accounted")
	}
	if n := c.reg.CounterValue("enclave_freshness_root_updates_total"); n == 0 {
		t.Fatal("no root updates committed")
	}

	// Second mount from sealed state only: the commitment round-trips.
	e2 := c.newEnclave(t, c.proofs)
	if err := c.mount(e2); err != nil {
		t.Fatalf("re-mount: %v", err)
	}
	got, err = e2.ReadFile("/docs/f")
	if err != nil || string(got) != "payload" {
		t.Fatalf("re-mounted ReadFile = %q, %v", got, err)
	}
}

// TestRollbackStaleObjectReplay is the basic rollback: the server
// replays earlier (consistent, correctly sealed) snapshots of
// individual metadata objects to a client that has since written newer
// versions. The merkle leaf pins each object's minimum version, so the
// replay is proven stale.
func TestRollbackStaleObjectReplay(t *testing.T) {
	c := newMerkleClient(t)
	if err := c.encl.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := c.encl.Touch("/docs/old"); err != nil {
		t.Fatal(err)
	}
	snap := c.raw.snapshot()
	if err := c.encl.Touch("/docs/new"); err != nil {
		t.Fatal(err)
	}

	c.encl.DropCaches()
	c.raw.setOnGet(func(name string, b []byte, v uint64) ([]byte, uint64) {
		if old, ok := snap.data[name]; ok {
			return append([]byte(nil), old...), snap.vers[name]
		}
		return b, v
	})
	_, err := c.encl.Filldir("/docs")
	if !errors.Is(err, enclave.ErrStaleObject) {
		t.Fatalf("stale replay = %v, want ErrStaleObject", err)
	}
	if !errors.Is(err, enclave.ErrStaleMetadata) {
		t.Fatalf("ErrStaleObject must wrap ErrStaleMetadata, got %v", err)
	}

	// Fail closed, not fail broken: honest service resumes.
	c.raw.setOnGet(nil)
	c.encl.DropCaches()
	if _, err := c.encl.Filldir("/docs"); err != nil {
		t.Fatalf("honest reads after attack: %v", err)
	}
}

// TestRollbackWholeVolumeFreshClient restores a full earlier volume
// state — data, tree snapshot, everything except the sealed root
// commitment, which the attacker cannot forge — then restarts the
// server plumbing and mounts a brand-new client. The commitment is
// ahead of everything the store can prove, so the mount fails closed.
func TestRollbackWholeVolumeFreshClient(t *testing.T) {
	c := newMerkleClient(t)
	if err := c.encl.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := c.encl.Touch("/docs/old"); err != nil {
		t.Fatal(err)
	}
	snap := c.raw.snapshot()
	if err := c.encl.Touch("/docs/new"); err != nil {
		t.Fatal(err)
	}

	c.raw.restore(snap, enclave.MerkleRootObjectName)
	c.proofs.setInner(vfs.NewFreshnessStore(c.raw))
	e2 := c.newEnclave(t, c.proofs)
	err := c.mount(e2)
	if err == nil {
		_, err = e2.Filldir("/docs")
	}
	if !errors.Is(err, enclave.ErrBadProof) && !errors.Is(err, enclave.ErrStaleObject) {
		t.Fatalf("whole-volume rollback = %v, want ErrBadProof or ErrStaleObject", err)
	}
}

// TestRollbackSealedRootEpochRegression rolls back everything
// *including* the sealed root to a client that has already observed a
// later epoch: the in-enclave monotonic counter catches it.
func TestRollbackSealedRootEpochRegression(t *testing.T) {
	c := newMerkleClient(t)
	if err := c.encl.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	snap := c.raw.snapshot()
	if err := c.encl.Touch("/docs/f"); err != nil {
		t.Fatal(err)
	}

	c.raw.restore(snap)
	c.proofs.setInner(vfs.NewFreshnessStore(c.raw))
	c.encl.DropCaches()
	_, err := c.encl.Filldir("/docs")
	if !errors.Is(err, enclave.ErrStaleObject) {
		t.Fatalf("sealed-root regression = %v, want ErrStaleObject", err)
	}
}

// TestForkedHistoriesDetected forks the volume: the server rewinds the
// store and lets a second client build a divergent history to the same
// epoch, then serves that history back to the first client. Same
// epoch, different root — the fork signature — must be detected the
// moment the histories meet.
func TestForkedHistoriesDetected(t *testing.T) {
	c := newMerkleClient(t)
	if err := c.encl.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	snap := c.raw.snapshot()

	// History A: our client keeps writing (and remembers epoch+root).
	if err := c.encl.Touch("/docs/ours"); err != nil {
		t.Fatal(err)
	}

	// History B: the server rewinds and a second client performs a
	// symmetric operation, advancing to the same epoch with a
	// different root.
	c.raw.restore(snap)
	eB := c.newEnclave(t, vfs.NewFreshnessStore(c.raw))
	if err := c.mount(eB); err != nil {
		t.Fatalf("fork client mount: %v", err)
	}
	if err := eB.Touch("/docs/theirs"); err != nil {
		t.Fatal(err)
	}

	// The server now serves history B to client A.
	c.proofs.setInner(vfs.NewFreshnessStore(c.raw))
	c.encl.DropCaches()
	_, err := c.encl.Filldir("/docs")
	if !errors.Is(err, enclave.ErrStaleObject) {
		t.Fatalf("fork = %v, want ErrStaleObject (fork detected)", err)
	}
}

// TestProofTamperingFailsClosed drives every malformed-proof shape
// through the live proof channel: truncation, corruption, splicing a
// stale leaf version under the fresh root, reordering the path. All
// must surface ErrBadProof, and honest service must resume afterwards.
func TestProofTamperingFailsClosed(t *testing.T) {
	c := newMerkleClient(t)
	if err := c.encl.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	// Enough objects that proofs carry real paths.
	for i := 0; i < 8; i++ {
		if err := c.encl.Touch(fmt.Sprintf("/d/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	remangle := func(raw []byte, f func(p *merkle.Proof)) []byte {
		p, err := merkle.DecodeProof(raw)
		if err != nil {
			return raw
		}
		f(p)
		return p.Encode()
	}
	cases := []struct {
		name   string
		mangle func(id uuid.UUID, raw []byte) []byte
	}{
		{"truncated", func(_ uuid.UUID, raw []byte) []byte { return raw[:len(raw)-1] }},
		{"empty", func(_ uuid.UUID, _ []byte) []byte { return nil }},
		{"corrupted", func(_ uuid.UUID, raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0x40
			return out
		}},
		{"stale leaf spliced under fresh root", func(_ uuid.UUID, raw []byte) []byte {
			return remangle(raw, func(p *merkle.Proof) {
				if p.HasLeaf && p.LeafVersion > 1 {
					p.LeafVersion--
				} else {
					p.LeafVersion += 7
				}
			})
		}},
		{"path reordered", func(_ uuid.UUID, raw []byte) []byte {
			return remangle(raw, func(p *merkle.Proof) {
				if len(p.Steps) >= 2 {
					p.Steps[0], p.Steps[1] = p.Steps[1], p.Steps[0]
				} else {
					p.Steps = append(p.Steps, p.Steps...)
				}
			})
		}},
		{"sibling hash flipped", func(_ uuid.UUID, raw []byte) []byte {
			return remangle(raw, func(p *merkle.Proof) {
				if len(p.Steps) > 0 {
					p.Steps[0].Sibling[0] ^= 1
				} else {
					p.HasLeaf = !p.HasLeaf
				}
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c.proofs.setMangle(tc.mangle)
			c.encl.DropCaches()
			_, err := c.encl.Filldir("/d")
			if !errors.Is(err, enclave.ErrBadProof) {
				t.Fatalf("%s proof = %v, want ErrBadProof", tc.name, err)
			}
			c.proofs.setMangle(nil)
			c.encl.DropCaches()
			if _, err := c.encl.Filldir("/d"); err != nil {
				t.Fatalf("honest reads after %s: %v", tc.name, err)
			}
		})
	}
}

// TestRootObjectVanishes deletes the sealed root out from under a
// client that has already committed epochs (and garbles proofs so the
// client is forced to re-read the commitment).
func TestRootObjectVanishes(t *testing.T) {
	c := newMerkleClient(t)
	if err := c.encl.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := c.raw.Delete(enclave.MerkleRootObjectName); err != nil {
		t.Fatal(err)
	}
	c.proofs.setMangle(func(_ uuid.UUID, _ []byte) []byte { return nil })
	c.encl.DropCaches()
	_, err := c.encl.Filldir("/d")
	if !errors.Is(err, enclave.ErrStaleObject) {
		t.Fatalf("vanished root = %v, want ErrStaleObject", err)
	}
}
