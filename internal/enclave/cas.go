package enclave

// Content-addressed dedup beneath the filenode (Config.ContentDefined;
// DESIGN.md §16). File contents are split by the content-defined
// chunker (internal/chunker), each chunk sealed convergently under the
// volume dedup secret (internal/cas) and stored once under its
// content-derived handle; the filenode records an extent list instead
// of per-chunk crypto contexts. A persistent reference-count table
// ("cas-refs", one per volume, sealed like every metadata object)
// drives garbage collection of unreferenced chunks.
//
// The crash-consistency invariant: the on-store ref table must NEVER
// undercount live references. Undercounting lets a later decrement hit
// zero and delete a chunk some filenode still names — data loss.
// Overcounting merely leaks a chunk object until the count drifts back
// down. Every flush in this file is therefore ordered so a crash at
// any point only overcounts:
//
//	upload new chunks → flush increments → flush filenode →
//	flush decrements → delete zeroed chunk objects
//
// Increments flush inside writeFileCDCLocked (before the caller seals
// the filenode); decrements accumulate in e.casDecs and flush through
// casFlushDecsLocked only after the referencing filenode is on the
// store (casFinishEagerLocked in eager mode, the tail of drainLocked in
// write-back mode). Chunk-object and superseded legacy data-object
// deletions trail the decrement flush via e.casPendingDeletes.
//
// Chunk uploads are idempotent byte-identical PUTs (cas derivation is
// deterministic), so a stale-low view of the table — e.g. the cached
// copy on first use — costs a redundant upload, never correctness.
// As with the write-back dirnode merge, concurrent clients GC-ing the
// same chunks a writer is deduplicating against is out of scope: the
// advisory ref-table lock serializes table updates, not the skip
// decision.

import (
	"fmt"

	"nexus/internal/cas"
	"nexus/internal/chunker"
	"nexus/internal/metadata"
	"nexus/internal/uuid"
)

// RefTableObjectName is the store name of the volume's chunk
// reference-count table.
const RefTableObjectName = "cas-refs"

// refTableID keys the ref table's preamble UUID and its slot in the
// enclave-local rollback memory (freshTableID is {0xff,0xfe}, the
// merkle root {0xff,0xfd}).
var refTableID = uuid.UUID{0xff, 0xfc}

// loadRefTableLocked fetches and verifies the ref table. A missing
// table is an empty one (no CDC writes yet). The enclave's local
// memory of the table's version is its rollback protection, exactly
// like the flat freshness table's.
func (e *Enclave) loadRefTableLocked() (*cas.RefTable, uint64, error) {
	blob, _, err := e.fetchObject(RefTableObjectName)
	if err != nil {
		if isNotExist(err) {
			return cas.NewRefTable(), 0, nil
		}
		return nil, 0, fmt.Errorf("fetching ref table: %w", err)
	}
	p, body, err := metadata.Open(e.rootKey, blob)
	if err != nil {
		return nil, 0, fmt.Errorf("verifying ref table: %w", err)
	}
	if p.Type != metadata.TypeRefTable {
		return nil, 0, fmt.Errorf("%w: ref table object has type %s", metadata.ErrTampered, p.Type)
	}
	if p.UUID != refTableID {
		return nil, 0, fmt.Errorf("%w: ref table claims UUID %s", metadata.ErrTampered, p.UUID)
	}
	if p.Version < e.refsSeq {
		return nil, 0, fmt.Errorf("%w: ref table version %d < seen %d", ErrStaleMetadata, p.Version, e.refsSeq)
	}
	t, err := cas.DecodeRefTable(body)
	if err != nil {
		return nil, 0, err
	}
	e.refsSeq = p.Version
	return t, p.Version, nil
}

// ensureRefsLocked lazily populates the cached committed ref table the
// dedup-skip decision reads. The cache is maintained by every flush;
// between flushes it can only be stale low (another client's uploads),
// which costs idempotent re-uploads, never correctness.
func (e *Enclave) ensureRefsLocked() error {
	if e.refsLoaded {
		return nil
	}
	t, _, err := e.loadRefTableLocked()
	if err != nil {
		return err
	}
	e.refs = t
	e.refsLoaded = true
	return nil
}

// flushRefTableLocked seals and uploads t at the next version, under
// the caller-held ref-table store lock, and installs it as the cache.
func (e *Enclave) flushRefTableLocked(t *cas.RefTable, version uint64) error {
	blob, err := metadata.Seal(e.rootKey, metadata.Preamble{
		Type:    metadata.TypeRefTable,
		UUID:    refTableID,
		Version: version,
	}, t.Encode())
	if err != nil {
		return fmt.Errorf("sealing ref table: %w", err)
	}
	if _, err := e.putObject(RefTableObjectName, blob); err != nil {
		return fmt.Errorf("uploading ref table: %w", err)
	}
	e.refs = t
	e.refsLoaded = true
	e.refsSeq = version
	e.metrics.metadataFlushes.Inc()
	e.metrics.metadataBytes.Add(int64(len(blob)))
	return nil
}

// casApplyIncsLocked merges reference increments into the on-store
// table: lock, reload (another client may have advanced it), apply,
// re-seal. Runs before the referencing filenode flushes, so the table
// overcounts — never undercounts — across a crash.
func (e *Enclave) casApplyIncsLocked(incs map[cas.Handle]uint32) error {
	if len(incs) == 0 {
		return nil
	}
	release, err := e.lockObject(RefTableObjectName)
	if err != nil {
		return fmt.Errorf("locking ref table: %w", err)
	}
	defer release()
	t, seq, err := e.loadRefTableLocked()
	if err != nil {
		return err
	}
	for h, n := range incs {
		t.Inc(h, n)
	}
	return e.flushRefTableLocked(t, seq+1)
}

// casStageDecsLocked queues reference drops for a no-longer-referenced
// extent list. They flush — and zeroed chunks are deleted — only after
// the metadata that referenced them is off the store (see the ordering
// invariant in the package comment above).
func (e *Enclave) casStageDecsLocked(extents []cas.Extent) {
	for _, x := range extents {
		e.casDecs[x.Handle]++
	}
}

// casFlushDecsLocked applies pending reference drops to the on-store
// table and deletes every chunk object that reached zero, plus any
// queued name-based deletions (superseded legacy data objects). Safe
// to retry: decrements clear only after the table upload succeeds, and
// the deletion queue drains destructively with missing objects
// tolerated.
func (e *Enclave) casFlushDecsLocked() error {
	if len(e.casDecs) == 0 && len(e.casPendingDeletes) == 0 {
		return nil
	}
	if len(e.casDecs) > 0 {
		release, err := e.lockObject(RefTableObjectName)
		if err != nil {
			return fmt.Errorf("locking ref table: %w", err)
		}
		defer release()
		t, seq, err := e.loadRefTableLocked()
		if err != nil {
			return err
		}
		var zeroed []string
		for h, n := range e.casDecs {
			if _, z := t.Dec(h, n); z {
				zeroed = append(zeroed, h.ObjectName())
			}
		}
		if err := e.flushRefTableLocked(t, seq+1); err != nil {
			return err
		}
		e.casDecs = make(map[cas.Handle]uint32)
		e.casPendingDeletes = append(e.casPendingDeletes, zeroed...)
	}
	for len(e.casPendingDeletes) > 0 {
		name := e.casPendingDeletes[0]
		if err := e.deleteObject(name); err != nil && !isNotExist(err) {
			return fmt.Errorf("deleting unreferenced chunk %s: %w", name, err)
		}
		e.casPendingDeletes = e.casPendingDeletes[1:]
	}
	return nil
}

// casFinishEagerLocked is the eager-mode tail of a CDC mutation: the
// caller has flushed (or deleted) the referencing filenode, so pending
// decrements and deferred object deletions can land. In write-back
// mode it is a no-op — staged filenode deletions have not run yet, so
// the drops ride drainLocked's tail instead.
func (e *Enclave) casFinishEagerLocked() error {
	if e.wb != nil {
		return nil
	}
	return e.casFlushDecsLocked()
}

// writeFileCDCLocked is encryptAndPutLocked's content-defined twin: it
// chunks data, uploads only chunks the volume has never stored, flushes
// the reference increments, and rewrites f's extent list in memory.
// The caller remains responsible for flushing the filenode and then
// calling casFinishEagerLocked (eager mode) or draining (write-back).
func (e *Enclave) writeFileCDCLocked(f *metadata.Filenode, data []byte) error {
	if e.casSecret == nil {
		return ErrNotMounted
	}
	if err := e.ensureRefsLocked(); err != nil {
		return err
	}

	c, err := chunker.NewWith(chunker.Config{
		Min: int(e.cfg.ChunkSize) / 4,
		Avg: int(e.cfg.ChunkSize),
		Max: int(e.cfg.ChunkSize) * 4,
	}, e.arena)
	if err != nil {
		return err
	}
	cuts := c.Feed(data, nil)
	if cut, ok := c.Flush(); ok {
		cuts = append(cuts, cut)
	}
	c.Close()

	extents := make([]cas.Extent, 0, len(cuts))
	newCounts := make(map[cas.Handle]uint32, len(cuts))
	prev := 0
	for _, cut := range cuts {
		h := e.casSecret.HandleFor(data[prev:cut])
		extents = append(extents, cas.Extent{Handle: h, Len: uint32(cut - prev)})
		newCounts[h]++
		prev = cut
	}
	oldCounts := make(map[cas.Handle]uint32, len(f.Extents))
	if f.ContentDefined {
		for _, x := range f.Extents {
			oldCounts[x.Handle]++
		}
	}

	// Upload pass: one sealed PUT per distinct chunk the volume does not
	// already hold. "Already holds" = referenced by the committed table,
	// or by the content this write replaces (whose increments are
	// committed). Pending decrements cannot invalidate either source:
	// zeroed chunks are only deleted after this write's increments land.
	span := e.metrics.tracer.Begin("enclave.chunkcrypto")
	span.SetTagInt("chunks", int64(len(cuts)))
	span.SetTagInt("cdc", 1)
	defer span.End()
	seen := make(map[cas.Handle]bool, len(cuts))
	prev = 0
	for i, cut := range cuts {
		h := extents[i].Handle
		chunk := data[prev:cut]
		prev = cut
		if seen[h] {
			continue
		}
		seen[h] = true
		if oldCounts[h] > 0 || e.refs.Get(h) > 0 {
			e.metrics.dedupHits.Inc()
			e.metrics.dedupSkipBytes.Add(int64(len(chunk)))
			continue
		}
		buf := e.arena.Get(cas.SealedLen(len(chunk)))
		if err := e.casSecret.Seal(h, chunk, buf.B); err != nil {
			buf.Release()
			return err
		}
		_, err := e.putDataObject(h.ObjectName(), buf.B)
		buf.Release()
		if err != nil {
			return fmt.Errorf("uploading chunk %s: %w", h, err)
		}
		e.metrics.dedupUploads.Inc()
		e.metrics.dataBytes.Add(int64(cas.SealedLen(len(chunk))))
	}
	e.metrics.chunks.Add(int64(len(cuts)))

	// Net reference deltas against the content being replaced. A handle
	// present on both sides nets out entirely — its chunk never risks a
	// transient zero.
	incs := make(map[cas.Handle]uint32)
	for h, n := range newCounts {
		if o := oldCounts[h]; n > o {
			incs[h] = n - o
		}
	}
	if err := e.casApplyIncsLocked(incs); err != nil {
		return err
	}
	for h, o := range oldCounts {
		if n := newCounts[h]; o > n {
			e.casDecs[h] += o - n
		}
	}

	// First CDC write to a legacy file supersedes its fixed-size data
	// object; the deletion trails the filenode flush so a crash never
	// strands the on-store filenode pointing at nothing.
	if !f.ContentDefined && f.Size > 0 {
		if e.wb != nil {
			e.stageDeleteLocked(f.DataUUID, false)
		} else {
			e.casPendingDeletes = append(e.casPendingDeletes, objName(f.DataUUID))
		}
	}

	f.ContentDefined = true
	f.ChunkSize = 0
	f.Extents = extents
	f.Size = uint64(len(data))
	f.Chunks = nil
	return nil
}

// readFileCDCLocked reassembles a content-defined file: each extent's
// sealed chunk is fetched by handle and opened directly into its slot
// of the output.
func (e *Enclave) readFileCDCLocked(f *metadata.Filenode) ([]byte, error) {
	if e.casSecret == nil {
		return nil, ErrNotMounted
	}
	span := e.metrics.tracer.Begin("enclave.chunkcrypto")
	span.SetTagInt("chunks", int64(len(f.Extents)))
	span.SetTagInt("cdc", 1)
	defer span.End()
	out := make([]byte, f.Size)
	off := 0
	for _, x := range f.Extents {
		blob, _, err := e.fetchDataObject(x.Handle.ObjectName())
		if err != nil {
			return nil, fmt.Errorf("fetching chunk %s: %w", x.Handle, err)
		}
		if len(blob) != cas.SealedLen(int(x.Len)) {
			return nil, fmt.Errorf("%w: chunk %s is %d bytes, extent records %d sealed",
				cas.ErrTampered, x.Handle, len(blob), cas.SealedLen(int(x.Len)))
		}
		if err := e.casSecret.Open(x.Handle, blob, out[off:off+int(x.Len)]); err != nil {
			return nil, err
		}
		off += int(x.Len)
	}
	e.metrics.chunks.Add(int64(len(f.Extents)))
	return out, nil
}
