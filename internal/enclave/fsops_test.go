package enclave

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nexus/internal/acl"
	"nexus/internal/metadata"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
)

func TestTouchWriteReadRoundTrip(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Touch("/hello.txt"); err != nil {
		t.Fatalf("Touch: %v", err)
	}
	data := []byte("plaintext file contents")
	if err := e.WriteFile("/hello.txt", data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := e.ReadFile("/hello.txt")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("ReadFile = %q", got)
	}

	// Empty file reads as empty.
	if err := e.Touch("/empty"); err != nil {
		t.Fatal(err)
	}
	got, err = e.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read = %q, %v", got, err)
	}
}

func TestCiphertextOnStore(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	secret := []byte("this must never appear on the storage service in the clear")
	if err := e.Touch("/secret"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/secret", secret); err != nil {
		t.Fatal(err)
	}
	names, err := env.store.mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		blob, _, err := env.store.GetVersioned(n)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(blob, secret) {
			t.Fatalf("object %s contains plaintext", n)
		}
		if bytes.Contains(blob, []byte("secret")) {
			t.Fatalf("object %s leaks the file name", n)
		}
	}
	// Object names are obfuscated UUIDs plus the supernode.
	for _, n := range names {
		if n == SupernodeObjectName {
			continue
		}
		if len(n) != 32 {
			t.Fatalf("object name %q is not an obfuscated UUID", n)
		}
	}
}

func TestMkdirNestedAndFilldir(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	for _, d := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := e.Mkdir(d); err != nil {
			t.Fatalf("Mkdir(%s): %v", d, err)
		}
	}
	if err := e.Touch("/a/b/c/file"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/a/other"); err != nil {
		t.Fatal(err)
	}

	entries, err := e.Filldir("/a")
	if err != nil {
		t.Fatalf("Filldir: %v", err)
	}
	if len(entries) != 2 || entries[0].Name != "b" || entries[1].Name != "other" {
		t.Fatalf("Filldir(/a) = %+v", entries)
	}
	entries, err = e.Filldir("/a/b/c")
	if err != nil || len(entries) != 1 || entries[0].Name != "file" {
		t.Fatalf("Filldir(/a/b/c) = %+v, %v", entries, err)
	}
	// Root listing.
	entries, err = e.Filldir("/")
	if err != nil || len(entries) != 1 || entries[0].Name != "a" {
		t.Fatalf("Filldir(/) = %+v, %v", entries, err)
	}
}

func TestLookupStat(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/dir/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/dir/f", make([]byte, 12345)); err != nil {
		t.Fatal(err)
	}

	st, err := e.Lookup("/dir/f")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if st.Kind != metadata.KindFile || st.Size != 12345 || st.Links != 1 {
		t.Fatalf("Lookup = %+v", st)
	}
	st, err = e.Lookup("/dir")
	if err != nil || st.Kind != metadata.KindDir {
		t.Fatalf("Lookup(/dir) = %+v, %v", st, err)
	}
	if _, err := e.Lookup("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(missing) = %v", err)
	}
	if _, err := e.Lookup("/dir/f/x"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("Lookup through file = %v", err)
	}
}

func TestRemoveSemantics(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/d/f", []byte("data")); err != nil {
		t.Fatal(err)
	}

	// Non-empty directory cannot be removed.
	if err := e.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Remove non-empty = %v", err)
	}
	objectsBefore := env.store.mem.Size()
	if err := e.Remove("/d/f"); err != nil {
		t.Fatalf("Remove file: %v", err)
	}
	// Removing the file drops its filenode and data object.
	if got := env.store.mem.Size(); got >= objectsBefore {
		t.Fatalf("objects after file removal = %d, before = %d", got, objectsBefore)
	}
	if _, err := e.ReadFile("/d/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after remove = %v", err)
	}
	if err := e.Remove("/d"); err != nil {
		t.Fatalf("Remove empty dir: %v", err)
	}
	if _, err := e.Filldir("/d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Filldir after rmdir = %v", err)
	}
	if err := e.Remove("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove missing = %v", err)
	}
}

func TestDuplicateCreateRejected(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/f"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Touch = %v", err)
	}
	if err := e.Mkdir("/f"); !errors.Is(err, ErrExists) {
		t.Fatalf("Mkdir over file = %v", err)
	}
}

func TestRenameWithinDirectory(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Touch("/old"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/old", []byte("content")); err != nil {
		t.Fatal(err)
	}
	if err := e.Rename("/old", "/new"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := e.Lookup("/old"); !errors.Is(err, ErrNotFound) {
		t.Fatal("/old still present")
	}
	got, err := e.ReadFile("/new")
	if err != nil || string(got) != "content" {
		t.Fatalf("ReadFile(/new) = %q, %v", got, err)
	}
}

func TestRenameAcrossDirectoriesReparents(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Mkdir("/src"); err != nil {
		t.Fatal(err)
	}
	if err := e.Mkdir("/dst"); err != nil {
		t.Fatal(err)
	}
	if err := e.Mkdir("/src/sub"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/src/sub/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/src/sub/f", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Move the whole subdirectory; its dirnode must be re-parented so
	// traversal (parent-UUID validation) keeps working.
	if err := e.Rename("/src/sub", "/dst/sub"); err != nil {
		t.Fatalf("Rename dir: %v", err)
	}
	got, err := e.ReadFile("/dst/sub/f")
	if err != nil || string(got) != "x" {
		t.Fatalf("read after dir move = %q, %v", got, err)
	}
	// Move a file across directories.
	if err := e.Rename("/dst/sub/f", "/src/f2"); err != nil {
		t.Fatalf("Rename file across dirs: %v", err)
	}
	if got, err := e.ReadFile("/src/f2"); err != nil || string(got) != "x" {
		t.Fatalf("read after file move = %q, %v", got, err)
	}
}

func TestRenameOverwritesFile(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	for name, content := range map[string]string{"/a": "aaa", "/b": "bbb"} {
		if err := e.Touch(name); err != nil {
			t.Fatal(err)
		}
		if err := e.WriteFile(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Rename("/a", "/b"); err != nil {
		t.Fatalf("Rename overwrite: %v", err)
	}
	got, err := e.ReadFile("/b")
	if err != nil || string(got) != "aaa" {
		t.Fatalf("ReadFile(/b) = %q, %v", got, err)
	}
	// Renaming onto a directory fails.
	if err := e.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/c"); err != nil {
		t.Fatal(err)
	}
	if err := e.Rename("/c", "/dir"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto dir = %v", err)
	}
}

func TestSymlink(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Symlink("/target/path", "/link"); err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	st, err := e.Lookup("/link")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != metadata.KindSymlink || st.SymlinkTarget != "/target/path" {
		t.Fatalf("Lookup(link) = %+v", st)
	}
	if err := e.Remove("/link"); err != nil {
		t.Fatalf("Remove symlink: %v", err)
	}
	if err := e.Symlink("", "/bad"); err == nil {
		t.Fatal("empty symlink target accepted")
	}
}

func TestHardlink(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/f", []byte("shared")); err != nil {
		t.Fatal(err)
	}
	if err := e.Hardlink("/f", "/d/link"); err != nil {
		t.Fatalf("Hardlink: %v", err)
	}

	st, err := e.Lookup("/f")
	if err != nil || st.Links != 2 {
		t.Fatalf("links = %+v, %v", st, err)
	}
	got, err := e.ReadFile("/d/link")
	if err != nil || string(got) != "shared" {
		t.Fatalf("read via link = %q, %v", got, err)
	}

	// Writing through one name is visible through the other.
	if err := e.WriteFile("/d/link", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, err = e.ReadFile("/f")
	if err != nil || string(got) != "updated" {
		t.Fatalf("read original after link write = %q, %v", got, err)
	}

	// Removing one link keeps the data; removing the last frees it.
	if err := e.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	got, err = e.ReadFile("/d/link")
	if err != nil || string(got) != "updated" {
		t.Fatalf("read after first unlink = %q, %v", got, err)
	}
	objectsBefore := env.store.mem.Size()
	if err := e.Remove("/d/link"); err != nil {
		t.Fatal(err)
	}
	if got := env.store.mem.Size(); got >= objectsBefore {
		t.Fatal("data object not freed after last unlink")
	}

	// Directories cannot be hardlinked.
	if err := e.Hardlink("/d", "/dlink"); !errors.Is(err, ErrNotFile) {
		t.Fatalf("dir hardlink = %v", err)
	}
}

func TestLargeDirectorySplitsBuckets(t *testing.T) {
	owner := newIdentity(t, "owen")
	env := newTestEnv(t, nil, nil)
	container := env.enclave.sgx
	encl, err := New(Config{SGX: container, Store: env.store, IAS: env.ias, BucketSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := encl.CreateVolume(owner.name, owner.pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := encl.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, encl, owner, sealed, volID); err != nil {
		t.Fatal(err)
	}

	const n = 100 // 16 per bucket -> 7 buckets
	for i := 0; i < n; i++ {
		if err := encl.Touch(fmt.Sprintf("/file%03d", i)); err != nil {
			t.Fatalf("Touch %d: %v", i, err)
		}
	}
	entries, err := encl.Filldir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("Filldir = %d entries, want %d", len(entries), n)
	}
	// Entries come back sorted.
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Fatal("Filldir not sorted")
		}
	}
	// Spot-check random access.
	if _, err := encl.Lookup("/file063"); err != nil {
		t.Fatal(err)
	}
	if err := encl.Remove("/file063"); err != nil {
		t.Fatal(err)
	}
	if _, err := encl.Lookup("/file063"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup after remove = %v", err)
	}
}

func TestPathValidation(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	for _, bad := range []string{"/a/../b", "/./x", "//a//b//."} {
		if err := e.Touch(bad); err == nil {
			t.Errorf("Touch(%q) accepted", bad)
		}
	}
	// Leading/trailing slashes are tolerated.
	if err := e.Mkdir("dir"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("dir/f/"); err != nil {
		t.Fatalf("Touch(dir/f/): %v", err)
	}
	if _, err := e.Lookup("/dir/f"); err != nil {
		t.Fatal(err)
	}
}

// --- ACL enforcement ---

// twoUserEnv is a volume with an owner and a non-owner user "alice",
// with the sealed rootkey retained so tests can switch identities.
type twoUserEnv struct {
	*testEnv
	owner, alice identity
	sealed       []byte
	volID        uuid.UUID
}

func (tu *twoUserEnv) authAs(t *testing.T, id identity) {
	t.Helper()
	if err := authenticate(t, tu.enclave, id, tu.sealed, tu.volID); err != nil {
		t.Fatalf("authenticating %s: %v", id.name, err)
	}
}

// mountTwoUsers returns an env where alice (non-owner) is authenticated,
// with the owner having prepared the tree and ACLs via prepare.
func mountTwoUsers(t *testing.T, prepare func(e *Enclave)) *twoUserEnv {
	t.Helper()
	owner := newIdentity(t, "owen")
	alice := newIdentity(t, "alice")
	env, sealed, volID := newMountedVolume(t, owner)
	if _, err := env.enclave.AddUser("alice", alice.pub); err != nil {
		t.Fatal(err)
	}
	prepare(env.enclave)
	tu := &twoUserEnv{testEnv: env, owner: owner, alice: alice, sealed: sealed, volID: volID}
	tu.authAs(t, alice)
	return tu
}

func TestACLDefaultDeny(t *testing.T) {
	env := mountTwoUsers(t, func(e *Enclave) {
		if err := e.Mkdir("/private"); err != nil {
			t.Fatal(err)
		}
		if err := e.Touch("/private/f"); err != nil {
			t.Fatal(err)
		}
	})
	e := env.enclave
	// Alice has no grants anywhere: everything is denied.
	if _, err := e.Filldir("/private"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("Filldir = %v, want ErrAccessDenied", err)
	}
	if _, err := e.ReadFile("/private/f"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("ReadFile = %v, want ErrAccessDenied", err)
	}
	if err := e.Touch("/private/new"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("Touch = %v, want ErrAccessDenied", err)
	}
}

func TestACLReadOnlyGrant(t *testing.T) {
	env := mountTwoUsers(t, func(e *Enclave) {
		if err := e.Mkdir("/shared"); err != nil {
			t.Fatal(err)
		}
		if err := e.Touch("/shared/doc"); err != nil {
			t.Fatal(err)
		}
		if err := e.WriteFile("/shared/doc", []byte("visible")); err != nil {
			t.Fatal(err)
		}
		// Root needs lookup for traversal; /shared gets read.
		if err := e.SetACL("/", "alice", acl.Lookup); err != nil {
			t.Fatal(err)
		}
		if err := e.SetACL("/shared", "alice", acl.ReadOnly); err != nil {
			t.Fatal(err)
		}
	})
	e := env.enclave

	got, err := e.ReadFile("/shared/doc")
	if err != nil || string(got) != "visible" {
		t.Fatalf("read with grant = %q, %v", got, err)
	}
	entries, err := e.Filldir("/shared")
	if err != nil || len(entries) != 1 {
		t.Fatalf("Filldir = %v, %v", entries, err)
	}
	// Write/insert/delete remain denied.
	if err := e.WriteFile("/shared/doc", []byte("nope")); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("write = %v", err)
	}
	if err := e.Touch("/shared/new"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("touch = %v", err)
	}
	if err := e.Remove("/shared/doc"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("remove = %v", err)
	}
	// ACL administration denied to non-owner without Administer.
	if err := e.SetACL("/shared", "alice", acl.All); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("SetACL = %v", err)
	}
}

func TestACLRevocationTakesEffect(t *testing.T) {
	env := mountTwoUsers(t, func(e *Enclave) {
		if err := e.Mkdir("/proj"); err != nil {
			t.Fatal(err)
		}
		if err := e.Touch("/proj/f"); err != nil {
			t.Fatal(err)
		}
		if err := e.SetACL("/", "alice", acl.Lookup); err != nil {
			t.Fatal(err)
		}
		if err := e.SetACL("/proj", "alice", acl.ReadWrite); err != nil {
			t.Fatal(err)
		}
	})
	e := env.enclave

	if err := e.WriteFile("/proj/f", []byte("alice writes")); err != nil {
		t.Fatalf("pre-revocation write: %v", err)
	}

	// Owner revokes alice from /proj — a single metadata update (§VII-E).
	env.authAs(t, env.owner)
	before := e.Stats().MetadataBytesWritten
	if err := e.SetACL("/proj", "alice", acl.None); err != nil {
		t.Fatalf("revocation: %v", err)
	}
	delta := e.Stats().MetadataBytesWritten - before
	if delta <= 0 || delta > 4096 {
		t.Fatalf("revocation re-encrypted %d bytes, want a single small metadata object", delta)
	}

	// Alice retains volume access (her key is still in the supernode)
	// but the directory denies her.
	env.authAs(t, env.alice)
	if err := e.WriteFile("/proj/f", []byte("denied")); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("post-revocation write = %v, want ErrAccessDenied", err)
	}
	if _, err := e.ReadFile("/proj/f"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("post-revocation read = %v, want ErrAccessDenied", err)
	}
}

func TestACLAdministerDelegation(t *testing.T) {
	// A non-owner holding Administer on a directory may change its ACL.
	env := mountTwoUsers(t, func(e *Enclave) {
		if err := e.Mkdir("/team"); err != nil {
			t.Fatal(err)
		}
		if err := e.SetACL("/", "alice", acl.Lookup); err != nil {
			t.Fatal(err)
		}
		if err := e.SetACL("/team", "alice", acl.ReadWrite|acl.Administer); err != nil {
			t.Fatal(err)
		}
	})
	e := env.enclave
	// Alice grants herself nothing new but can edit the ACL.
	if err := e.SetACL("/team", "alice", acl.ReadOnly); err != nil {
		t.Fatalf("delegated SetACL: %v", err)
	}
	// Having dropped her own Administer, she can no longer edit it.
	if err := e.SetACL("/team", "alice", acl.All); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("SetACL after self-downgrade = %v", err)
	}
}

func TestGetACL(t *testing.T) {
	owner := newIdentity(t, "owen")
	alice := newIdentity(t, "alice")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave
	if _, err := e.AddUser("alice", alice.pub); err != nil {
		t.Fatal(err)
	}
	if err := e.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := e.SetACL("/d", "alice", acl.ReadOnly); err != nil {
		t.Fatal(err)
	}
	got, err := e.GetACL("/d")
	if err != nil {
		t.Fatal(err)
	}
	if got["alice"] != acl.ReadOnly || len(got) != 1 {
		t.Fatalf("GetACL = %v", got)
	}
	// Unknown user rejected.
	if err := e.SetACL("/d", "nobody", acl.ReadOnly); !errors.Is(err, metadata.ErrUserNotFound) {
		t.Fatalf("SetACL unknown user = %v", err)
	}
}

// TestWriteReadAcrossCryptoWorkerWidths drives the full enclave
// read/write path (WriteFile → store → ReadFile) at several chunk-crypto
// fan-out widths, checking byte-identical round trips and that tampering
// with the stored data object still surfaces ErrTampered under the
// parallel pipeline.
func TestWriteReadAcrossCryptoWorkerWidths(t *testing.T) {
	owner := newIdentity(t, "owen")
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 31)
	}
	for _, workers := range []int{1, 2, 8} {
		store := newMemObjectStore()
		platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		container, err := platform.CreateEnclave(nexusImage)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{SGX: container, Store: store, ChunkSize: 4096, CryptoWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sealed, err := e.CreateVolume(owner.name, owner.pub)
		if err != nil {
			t.Fatal(err)
		}
		volID, err := e.VolumeUUID()
		if err != nil {
			t.Fatal(err)
		}
		if err := authenticate(t, e, owner, sealed, volID); err != nil {
			t.Fatal(err)
		}

		if err := e.Touch("/blob"); err != nil {
			t.Fatal(err)
		}
		if err := e.WriteFile("/blob", data); err != nil {
			t.Fatalf("workers %d: WriteFile: %v", workers, err)
		}
		got, err := e.ReadFile("/blob")
		if err != nil {
			t.Fatalf("workers %d: ReadFile: %v", workers, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("workers %d: round trip mismatch", workers)
		}

		// Corrupt the data object (the only store object whose length is
		// the sealed size: plaintext plus one inline tag per 4 KiB chunk).
		sealedLen := len(data) + (len(data)/4096)*16
		names, err := store.mem.List("")
		if err != nil {
			t.Fatal(err)
		}
		corrupted := false
		for _, n := range names {
			blob, err := store.mem.Get(n)
			if err != nil {
				t.Fatal(err)
			}
			if len(blob) == sealedLen {
				mut := bytes.Clone(blob)
				mut[len(mut)/2] ^= 1
				if err := store.mem.Put(n, mut); err != nil {
					t.Fatal(err)
				}
				corrupted = true
			}
		}
		if !corrupted {
			t.Fatalf("workers %d: data object not found on store", workers)
		}
		if _, err := e.ReadFile("/blob"); !errors.Is(err, metadata.ErrTampered) {
			t.Fatalf("workers %d: tampered read = %v, want ErrTampered", workers, err)
		}
	}
}
