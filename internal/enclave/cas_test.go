package enclave

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"nexus/internal/chunker"
)

// cdcConfig is the standard content-defined test configuration: a
// 4 KiB average chunk keeps the test files small while still cutting
// plenty of chunks per file.
func cdcConfig() Config {
	return Config{ContentDefined: true, ChunkSize: 4096}
}

// chunkObjects counts the CAS chunk objects on the env's store,
// excluding the ref-table object (which shares the "cas-" prefix).
func chunkObjects(t *testing.T, env *wbEnv) int {
	t.Helper()
	store, ok := env.cfg.Store.(*memObjectStore)
	if !ok {
		t.Fatalf("env store is %T, want *memObjectStore", env.cfg.Store)
	}
	names, err := store.mem.List("cas-")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, name := range names {
		if name != RefTableObjectName {
			n++
		}
	}
	return n
}

// cdcData builds deterministic pseudo-random content; random bytes
// give the rolling hash realistic cut density.
func cdcData(seed int64, n int) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestCDCWriteReadRoundTrip(t *testing.T) {
	env := newWbEnv(t, newIdentity(t, "owner"), cdcConfig())
	e := env.enclave
	data := cdcData(1, 50_000)
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/f", data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := e.ReadFile("/f")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}

	st := e.Stats()
	if st.DedupChunksUploaded < 2 {
		t.Fatalf("uploaded %d chunks, want several", st.DedupChunksUploaded)
	}
	if n := chunkObjects(t, env); int64(n) != st.DedupChunksUploaded {
		t.Fatalf("store holds %d chunk objects, stats say %d uploaded", n, st.DedupChunksUploaded)
	}

	// A restarted enclave must reassemble the file purely from the
	// store: extent filenode, chunk objects, convergent keys.
	fresh := env.freshEnclave(t, env.cfg.Store)
	got, err = fresh.ReadFile("/f")
	if err != nil {
		t.Fatalf("fresh ReadFile: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fresh enclave round trip mismatch")
	}
}

func TestCDCDedupAcrossFiles(t *testing.T) {
	env := newWbEnv(t, newIdentity(t, "owner"), cdcConfig())
	e := env.enclave
	data := cdcData(2, 64_000)
	for _, p := range []string{"/a", "/b"} {
		if err := e.Touch(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WriteFile("/a", data); err != nil {
		t.Fatal(err)
	}
	before := chunkObjects(t, env)
	uploadsBefore := e.Stats().DedupChunksUploaded

	// Identical plaintext in a second file stores nothing new.
	if err := e.WriteFile("/b", data); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.DedupChunksUploaded != uploadsBefore {
		t.Fatalf("second copy uploaded %d chunks", st.DedupChunksUploaded-uploadsBefore)
	}
	if st.DedupHits == 0 || st.DedupBytesSkipped < int64(len(data)) {
		t.Fatalf("dedup stats hits=%d skipped=%d, want full-file skip", st.DedupHits, st.DedupBytesSkipped)
	}
	if n := chunkObjects(t, env); n != before {
		t.Fatalf("chunk objects %d -> %d after duplicate write", before, n)
	}
	got, err := e.ReadFile("/b")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("duplicate file read: %v", err)
	}
}

func TestCDCEditLocality(t *testing.T) {
	env := newWbEnv(t, newIdentity(t, "owner"), cdcConfig())
	e := env.enclave
	data := cdcData(3, 256*1024)
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	uploadsBefore := e.Stats().DedupChunksUploaded

	// A one-byte edit must re-upload only the chunks it lands in —
	// boundaries resynchronize, so the tail survives untouched.
	edited := bytes.Clone(data)
	edited[len(edited)/2] ^= 0xff
	if err := e.WriteFile("/f", edited); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	delta := st.DedupChunksUploaded - uploadsBefore
	if delta == 0 || delta > 4 {
		t.Fatalf("point edit re-uploaded %d chunks, want 1..4", delta)
	}
	if st.DedupHits == 0 {
		t.Fatal("point edit recorded no dedup hits")
	}
	got, err := e.ReadFile("/f")
	if err != nil || !bytes.Equal(got, edited) {
		t.Fatalf("post-edit read: %v", err)
	}
}

func TestCDCRemoveGC(t *testing.T) {
	env := newWbEnv(t, newIdentity(t, "owner"), cdcConfig())
	e := env.enclave
	data := cdcData(4, 40_000)
	for _, p := range []string{"/a", "/b"} {
		if err := e.Touch(p); err != nil {
			t.Fatal(err)
		}
		if err := e.WriteFile(p, data); err != nil {
			t.Fatal(err)
		}
	}
	shared := chunkObjects(t, env)
	if shared == 0 {
		t.Fatal("no chunk objects after writes")
	}

	// Removing one of two referencing files must not free the chunks.
	if err := e.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if n := chunkObjects(t, env); n != shared {
		t.Fatalf("chunks dropped from %d to %d while still referenced", shared, n)
	}
	if got, err := e.ReadFile("/b"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("surviving file read: %v", err)
	}

	// Removing the last reference frees every chunk.
	if err := e.Remove("/b"); err != nil {
		t.Fatal(err)
	}
	if n := chunkObjects(t, env); n != 0 {
		t.Fatalf("%d chunk objects leaked after last unlink", n)
	}
}

func TestCDCOverwriteGC(t *testing.T) {
	env := newWbEnv(t, newIdentity(t, "owner"), cdcConfig())
	e := env.enclave
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/f", cdcData(5, 60_000)); err != nil {
		t.Fatal(err)
	}

	// An overwrite with unrelated content replaces every extent; the
	// old chunks must be gone once the write returns (eager mode).
	data2 := cdcData(6, 60_000)
	if err := e.WriteFile("/f", data2); err != nil {
		t.Fatal(err)
	}
	want := len(boundariesFor(t, data2))
	if n := chunkObjects(t, env); n != want {
		t.Fatalf("store holds %d chunk objects after overwrite, want %d", n, want)
	}
	fresh := env.freshEnclave(t, env.cfg.Store)
	if got, err := fresh.ReadFile("/f"); err != nil || !bytes.Equal(got, data2) {
		t.Fatalf("post-overwrite fresh read: %v", err)
	}

	// Truncate-to-empty drops the last references too.
	if err := e.WriteFile("/f", nil); err != nil {
		t.Fatal(err)
	}
	if n := chunkObjects(t, env); n != 0 {
		t.Fatalf("%d chunk objects leaked after truncate-to-empty", n)
	}
	if got, err := e.ReadFile("/f"); err != nil || len(got) != 0 {
		t.Fatalf("read after truncate-to-empty: %d bytes, err %v", len(got), err)
	}
}

// boundariesFor computes the expected chunk count for content written
// under cdcConfig, via the same chunker parameters the enclave uses.
func boundariesFor(t *testing.T, data []byte) []int {
	t.Helper()
	cfg := cdcConfig()
	cuts, err := chunker.Boundaries(chunker.Config{
		Min: int(cfg.ChunkSize) / 4,
		Avg: int(cfg.ChunkSize),
		Max: int(cfg.ChunkSize) * 4,
	}, data)
	if err != nil {
		t.Fatal(err)
	}
	return cuts
}

func TestCDCHardlinkKeepsChunks(t *testing.T) {
	env := newWbEnv(t, newIdentity(t, "owner"), cdcConfig())
	e := env.enclave
	data := cdcData(7, 30_000)
	if err := e.Touch("/a"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/a", data); err != nil {
		t.Fatal(err)
	}
	if err := e.Hardlink("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	n := chunkObjects(t, env)

	// Unlinking one name only drops a link count — chunks stay put.
	if err := e.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if got := chunkObjects(t, env); got != n {
		t.Fatalf("chunks %d -> %d after non-final unlink", n, got)
	}
	if got, err := e.ReadFile("/b"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read via surviving link: %v", err)
	}
	if err := e.Remove("/b"); err != nil {
		t.Fatal(err)
	}
	if got := chunkObjects(t, env); got != 0 {
		t.Fatalf("%d chunks leaked after final unlink", got)
	}
}

func TestCDCLegacyConversion(t *testing.T) {
	// Volume starts with fixed-size chunking; the knob flips on a
	// later mount and the next write converts the file in place.
	env := newWbEnv(t, newIdentity(t, "owner"), Config{ChunkSize: 4096})
	e := env.enclave
	legacy := cdcData(8, 20_000)
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/f", legacy); err != nil {
		t.Fatal(err)
	}
	store := env.cfg.Store.(*memObjectStore)
	before, err := store.mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	if chunkObjects(t, env) != 0 {
		t.Fatal("legacy write produced CAS objects")
	}

	env.cfg.ContentDefined = true
	e2 := env.freshEnclave(t, env.cfg.Store)
	// Reads never consult the knob: the legacy file stays readable.
	if got, err := e2.ReadFile("/f"); err != nil || !bytes.Equal(got, legacy) {
		t.Fatalf("legacy read under CDC mount: %v", err)
	}
	// The first write converts: extents appear, the old monolithic
	// data object is deleted.
	updated := cdcData(9, 25_000)
	if err := e2.WriteFile("/f", updated); err != nil {
		t.Fatalf("converting write: %v", err)
	}
	if chunkObjects(t, env) == 0 {
		t.Fatal("converting write produced no CAS objects")
	}
	after, err := store.mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	afterSet := make(map[string]bool, len(after))
	for _, name := range after {
		afterSet[name] = true
	}
	// Exactly one pre-conversion object — the legacy data blob —
	// must have disappeared.
	var gone []string
	for _, name := range before {
		if !afterSet[name] && !strings.HasPrefix(name, "cas-") {
			gone = append(gone, name)
		}
	}
	if len(gone) != 1 {
		t.Fatalf("conversion deleted %d objects (%v), want the one legacy data object", len(gone), gone)
	}
	if got, err := e2.ReadFile("/f"); err != nil || !bytes.Equal(got, updated) {
		t.Fatalf("post-conversion read: %v", err)
	}
	fresh := env.freshEnclave(t, env.cfg.Store)
	if got, err := fresh.ReadFile("/f"); err != nil || !bytes.Equal(got, updated) {
		t.Fatalf("post-conversion fresh read: %v", err)
	}
}

func TestCDCWritebackDrainGC(t *testing.T) {
	cfg := cdcConfig()
	cfg.Writeback = WritebackOn
	env := newWbEnv(t, newIdentity(t, "owner"), cfg)
	e := env.enclave
	data := cdcData(10, 48_000)
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	// Chunks upload eagerly even under write-back — only metadata and
	// GC defer.
	first := chunkObjects(t, env)
	if first == 0 {
		t.Fatal("write-back write uploaded no chunks")
	}

	data2 := cdcData(11, 48_000)
	if err := e.WriteFile("/f", data2); err != nil {
		t.Fatal(err)
	}
	// Replaced chunks linger until the batch drains: the on-store
	// filenode may still reference them.
	if n := chunkObjects(t, env); n <= len(boundariesFor(t, data2)) {
		t.Fatalf("replaced chunks dropped before drain (%d objects)", n)
	}
	if err := e.SyncMetadata(); err != nil {
		t.Fatalf("SyncMetadata: %v", err)
	}
	if n, want := chunkObjects(t, env), len(boundariesFor(t, data2)); n != want {
		t.Fatalf("after drain: %d chunk objects, want %d", n, want)
	}
	fresh := env.freshEnclave(t, env.cfg.Store)
	if got, err := fresh.ReadFile("/f"); err != nil || !bytes.Equal(got, data2) {
		t.Fatalf("post-drain fresh read: %v", err)
	}

	// Remove + drain frees everything.
	if err := e.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	if n := chunkObjects(t, env); n != 0 {
		t.Fatalf("%d chunk objects leaked after remove+drain", n)
	}
}

func TestCDCWritebackPendingCreateRemove(t *testing.T) {
	cfg := cdcConfig()
	cfg.Writeback = WritebackOn
	env := newWbEnv(t, newIdentity(t, "owner"), cfg)
	e := env.enclave
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/f", cdcData(12, 32_000)); err != nil {
		t.Fatal(err)
	}
	// Create and remove inside one batch: the filenode never reaches
	// the store, but the chunks did — the drain must reap them.
	if err := e.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncMetadata(); err != nil {
		t.Fatal(err)
	}
	if n := chunkObjects(t, env); n != 0 {
		t.Fatalf("%d chunk objects leaked from cancelled create", n)
	}
}

func TestCDCRefTableRollbackDetected(t *testing.T) {
	env := newWbEnv(t, newIdentity(t, "owner"), cdcConfig())
	e := env.enclave
	for _, p := range []string{"/a", "/b", "/c"} {
		if err := e.Touch(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WriteFile("/a", cdcData(13, 20_000)); err != nil {
		t.Fatal(err)
	}
	store := env.cfg.Store.(*memObjectStore)
	old, err := store.mem.Get(RefTableObjectName)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/b", cdcData(14, 20_000)); err != nil {
		t.Fatal(err)
	}
	// A storage service replaying the older ref table is a rollback:
	// accepting it would erase /b's references and free live chunks.
	if err := store.mem.Put(RefTableObjectName, old); err != nil {
		t.Fatal(err)
	}
	err = e.WriteFile("/c", cdcData(15, 20_000))
	if !errors.Is(err, ErrStaleMetadata) {
		t.Fatalf("write over rolled-back ref table: %v, want ErrStaleMetadata", err)
	}
}
