package enclave

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"nexus/internal/acl"
	"nexus/internal/backend"
	"nexus/internal/metadata"
	"nexus/internal/uuid"
)

// Stat describes a directory entry, returned by Lookup.
type Stat struct {
	Name string
	Kind metadata.EntryKind
	// Size is the plaintext size for files; zero otherwise.
	Size uint64
	// Links is the hardlink count for files.
	Links uint32
	// SymlinkTarget is set for symlinks.
	SymlinkTarget string
}

// splitPath normalizes a volume-relative path into its directory
// components and final name. The root is addressed as "/" or "".
func splitPath(path string) (dirs []string, base string, err error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, "", nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, "", fmt.Errorf("enclave: invalid path component %q", p)
		}
	}
	return parts[:len(parts)-1], parts[len(parts)-1], nil
}

// retryTornEcall runs an operation, retrying briefly when it observes a
// bucket MAC mismatch. Writers flush a dirnode's buckets and then its
// main object as separate store writes, and the storage layer's
// invalidations propagate per object, so an unlocked reader can
// transiently see a fresh bucket against a stale main object. The
// mutation paths take the store lock before changing anything, so such
// an error always precedes any side effect and the whole operation is
// safe to retry. A *persistent* mismatch is the real signal — a rolled
// back or substituted bucket (§V-B) — and is surfaced after the bounded
// retries.
//
// Storage-substrate faults (ErrStoreUnavailable) are deliberately NOT
// retried here: idempotent-RPC retry lives in the AFS client, and a
// mutating operation that died with unknown outcome must surface so the
// caller can re-validate instead of blindly re-running the ecall.
func (e *Enclave) retryTornEcall(fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = e.sgx.Ecall(fn)
		if err == nil || attempt >= 3 || !errors.Is(err, metadata.ErrBucketMACMismatch) {
			return err
		}
		// Give the lagging invalidation a moment to land.
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
	}
}

// walkResult carries a resolved directory and its current metadata
// version (used for version bumps on flush).
type walkResult struct {
	dir     *metadata.Dirnode
	version uint64
}

// walkDirLocked resolves a directory path from the volume root, applying
// the Lookup right and parent-UUID validation at each step (§IV-A3).
func (e *Enclave) walkDirLocked(dirs []string) (walkResult, error) {
	cur, version, err := e.loadDirnode(e.super.RootDir, e.super.VolumeUUID)
	if err != nil {
		return walkResult{}, fmt.Errorf("loading root directory: %w", err)
	}
	for i, name := range dirs {
		if err := e.checkACLLocked(cur, acl.Lookup); err != nil {
			return walkResult{}, fmt.Errorf("traversing %q: %w", strings.Join(dirs[:i+1], "/"), err)
		}
		entry, err := cur.Lookup(name, e.bucketLoaderFor(cur))
		if err != nil {
			if errors.Is(err, metadata.ErrEntryNotFound) {
				return walkResult{}, fmt.Errorf("%w: %s", ErrNotFound, strings.Join(dirs[:i+1], "/"))
			}
			return walkResult{}, err
		}
		if entry.Kind != metadata.KindDir {
			return walkResult{}, fmt.Errorf("%w: %s", ErrNotDir, strings.Join(dirs[:i+1], "/"))
		}
		next, v, err := e.loadDirnode(entry.UUID, cur.UUID)
		if err != nil {
			return walkResult{}, err
		}
		cur, version = next, v
	}
	return walkResult{dir: cur, version: version}, nil
}

// checkACLLocked enforces the directory's ACL for the authenticated user
// (default deny, owner override; §IV-C). Group entries resolve through
// the membership key tree: a grant to the user's leaf subgroup counts
// toward the requested rights.
func (e *Enclave) checkACLLocked(d *metadata.Dirnode, want acl.Rights) error {
	var groups []uint32
	if tree := e.groupTreeLocked(); tree != nil {
		groups = tree.GroupsOf(e.user.ID)
	}
	if d.ACL.CheckGroups(e.user.ID, e.isOwnerLocked(), groups, want) {
		return nil
	}
	have := d.ACL.ResolveRights(e.user.ID, groups)
	return fmt.Errorf("%w: user %q needs %s on directory, has %s",
		ErrAccessDenied, e.user.Name, want, have)
}

// reloadDirUnderLockLocked re-resolves a directory after its store lock
// has been taken, so the mutation applies to the freshest version.
func (e *Enclave) reloadDirUnderLockLocked(dirs []string) (walkResult, error) {
	return e.walkDirLocked(dirs)
}

// createEntry is the shared implementation of Touch, Mkdir and Symlink.
func (e *Enclave) createEntry(path string, kind metadata.EntryKind, symlinkTarget string) error {
	return e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		dirs, name, err := splitPath(path)
		if err != nil {
			return err
		}
		if name == "" {
			return fmt.Errorf("%w: cannot create the volume root", ErrExists)
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(w.dir, acl.Insert); err != nil {
			return err
		}

		if e.wb != nil {
			return e.createEntryWritebackLocked(w, path, name, kind, symlinkTarget)
		}

		release, err := e.lockObject(objName(w.dir.UUID))
		if err != nil {
			return fmt.Errorf("locking directory: %w", err)
		}
		defer release()
		w, err = e.reloadDirUnderLockLocked(dirs)
		if err != nil {
			return err
		}

		entry := metadata.DirEntry{
			Name:          name,
			UUID:          uuid.New(),
			Kind:          kind,
			SymlinkTarget: symlinkTarget,
		}

		// Create the child's metadata object first so the directory never
		// references a missing object.
		switch kind {
		case metadata.KindFile:
			f := metadata.NewFilenode(entry.UUID, w.dir.UUID, e.cfg.ChunkSize)
			if err := e.flushFilenodeLocked(f, 1); err != nil {
				return err
			}
		case metadata.KindDir:
			d := metadata.NewDirnode(entry.UUID, w.dir.UUID, e.cfg.BucketSize)
			if err := e.flushDirnodeLocked(d, 1); err != nil {
				return err
			}
		case metadata.KindSymlink:
			// Symlinks live entirely in the dirnode entry.
		}

		if err := w.dir.Insert(entry, e.bucketLoaderFor(w.dir)); err != nil {
			if errors.Is(err, metadata.ErrEntryExists) {
				return fmt.Errorf("%w: %s", ErrExists, path)
			}
			return err
		}
		if err := e.flushDirnodeLocked(w.dir, w.version+1); err != nil {
			e.cache.invalidate(w.dir.UUID)
			return err
		}
		return nil
	})
}

// Touch creates an empty file (nexus_fs_touch for files).
func (e *Enclave) Touch(path string) error {
	return e.createEntry(path, metadata.KindFile, "")
}

// Mkdir creates a directory (nexus_fs_touch for directories).
func (e *Enclave) Mkdir(path string) error {
	return e.createEntry(path, metadata.KindDir, "")
}

// Symlink creates a symbolic link at linkPath pointing to target
// (nexus_fs_symlink). The target is stored, encrypted, in the dirnode
// and is not resolved or validated.
func (e *Enclave) Symlink(target, linkPath string) error {
	if target == "" {
		return fmt.Errorf("enclave: empty symlink target")
	}
	return e.createEntry(linkPath, metadata.KindSymlink, target)
}

// Remove deletes a file, symlink, or empty directory (nexus_fs_remove).
func (e *Enclave) Remove(path string) error {
	return e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		dirs, name, err := splitPath(path)
		if err != nil {
			return err
		}
		if name == "" {
			return fmt.Errorf("enclave: cannot remove the volume root")
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(w.dir, acl.Delete); err != nil {
			return err
		}

		if e.wb != nil {
			return e.removeWritebackLocked(w, path, name)
		}

		release, err := e.lockObject(objName(w.dir.UUID))
		if err != nil {
			return fmt.Errorf("locking directory: %w", err)
		}
		defer release()
		w, err = e.reloadDirUnderLockLocked(dirs)
		if err != nil {
			return err
		}

		entry, err := w.dir.Lookup(name, e.bucketLoaderFor(w.dir))
		if err != nil {
			if errors.Is(err, metadata.ErrEntryNotFound) {
				return fmt.Errorf("%w: %s", ErrNotFound, path)
			}
			return err
		}

		switch entry.Kind {
		case metadata.KindDir:
			child, _, err := e.loadDirnode(entry.UUID, w.dir.UUID)
			if err != nil {
				return err
			}
			if child.EntryCount() != 0 {
				return fmt.Errorf("%w: %s", ErrNotEmpty, path)
			}
			removed := map[uuid.UUID]uint64{entry.UUID: 0}
			for _, ref := range child.Refs {
				if err := e.deleteObject(objName(ref.UUID)); err != nil {
					return fmt.Errorf("deleting bucket: %w", err)
				}
				removed[ref.UUID] = 0
			}
			for _, old := range child.Retired {
				if err := e.deleteObject(objName(old)); err != nil && !isNotExist(err) {
					return fmt.Errorf("deleting retired bucket: %w", err)
				}
				removed[old] = 0
			}
			if err := e.deleteObject(objName(entry.UUID)); err != nil {
				return fmt.Errorf("deleting dirnode: %w", err)
			}
			e.cache.invalidate(entry.UUID)
			if err := e.recordFreshnessLocked(removed); err != nil {
				return err
			}

		case metadata.KindFile:
			// Lock the filenode: its link count races with concurrent
			// WriteFile/Hardlink from other clients otherwise.
			fRelease, err := e.lockObject(objName(entry.UUID))
			if err != nil {
				return fmt.Errorf("locking filenode: %w", err)
			}
			defer fRelease()
			f, fv, err := e.loadFilenode(entry.UUID, w.dir.UUID)
			if err != nil {
				return err
			}
			if f.LinkCount > 1 {
				f.LinkCount--
				// The remaining links' directories are unknown; drop the
				// parent binding (nil = hardlink history, checked no
				// further — the dirnode entry UUID still binds structure).
				f.Parent = uuid.Nil
				if err := e.flushFilenodeLocked(f, fv+1); err != nil {
					return err
				}
			} else {
				if f.ContentDefined {
					// Chunk drops flush (and zeroed chunks delete) only
					// after the filenode object is off the store.
					e.casStageDecsLocked(f.Extents)
				} else if f.Size > 0 {
					if err := e.deleteObject(objName(f.DataUUID)); err != nil && !isNotExist(err) {
						return fmt.Errorf("deleting data object: %w", err)
					}
				}
				if err := e.deleteObject(objName(entry.UUID)); err != nil {
					return fmt.Errorf("deleting filenode: %w", err)
				}
				e.cache.invalidate(entry.UUID)
				if err := e.recordFreshnessLocked(map[uuid.UUID]uint64{entry.UUID: 0}); err != nil {
					return err
				}
				if err := e.casFinishEagerLocked(); err != nil {
					return err
				}
			}

		case metadata.KindSymlink:
			// Entry-only; nothing else to delete.
		}

		if _, err := w.dir.Remove(name, e.bucketLoaderFor(w.dir)); err != nil {
			return err
		}
		if err := e.flushDirnodeLocked(w.dir, w.version+1); err != nil {
			e.cache.invalidate(w.dir.UUID)
			return err
		}
		return nil
	})
}

// isNotExist reports whether err is any flavour of missing-object error
// crossing the ocall boundary.
func isNotExist(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, backend.ErrNotExist) {
		return true
	}
	return strings.Contains(err.Error(), "does not exist")
}

// Lookup finds an entry by path and returns its attributes
// (nexus_fs_lookup).
func (e *Enclave) Lookup(path string) (Stat, error) {
	var st Stat
	err := e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		dirs, name, err := splitPath(path)
		if err != nil {
			return err
		}
		if name == "" {
			st = Stat{Name: "/", Kind: metadata.KindDir}
			_, err := e.walkDirLocked(nil)
			return err
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(w.dir, acl.Lookup); err != nil {
			return err
		}
		entry, err := w.dir.Lookup(name, e.bucketLoaderFor(w.dir))
		if err != nil {
			if errors.Is(err, metadata.ErrEntryNotFound) {
				return fmt.Errorf("%w: %s", ErrNotFound, path)
			}
			return err
		}
		st = Stat{Name: entry.Name, Kind: entry.Kind, SymlinkTarget: entry.SymlinkTarget}
		if entry.Kind == metadata.KindFile {
			f, _, err := e.loadFilenode(entry.UUID, w.dir.UUID)
			if err != nil {
				return err
			}
			st.Size = f.Size
			st.Links = f.LinkCount
		}
		return nil
	})
	if err != nil {
		return Stat{}, err
	}
	return st, nil
}

// Filldir lists a directory's entries sorted by name (nexus_fs_filldir).
func (e *Enclave) Filldir(path string) ([]Stat, error) {
	var out []Stat
	err := e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		dirs, name, err := splitPath(path)
		if err != nil {
			return err
		}
		if name != "" {
			dirs = append(dirs, name)
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(w.dir, acl.Lookup); err != nil {
			return err
		}
		entries, err := w.dir.List(e.bucketLoaderFor(w.dir))
		if err != nil {
			return err
		}
		out = make([]Stat, 0, len(entries))
		for _, entry := range entries {
			out = append(out, Stat{
				Name:          entry.Name,
				Kind:          entry.Kind,
				SymlinkTarget: entry.SymlinkTarget,
			})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Hardlink creates newPath as an additional name for the existing file
// (nexus_fs_hardlink). Directories cannot be hardlinked.
func (e *Enclave) Hardlink(existingPath, newPath string) error {
	return e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		// Hardlink spans two directories and mutates a shared link
		// count; it runs eagerly on a drained set so its lock-ordered
		// protocol sees no deferred state.
		if err := e.drainWithRetryLocked(); err != nil {
			return err
		}
		srcDirs, srcName, err := splitPath(existingPath)
		if err != nil {
			return err
		}
		dstDirs, dstName, err := splitPath(newPath)
		if err != nil {
			return err
		}
		if srcName == "" || dstName == "" {
			return fmt.Errorf("%w: hardlink involving the volume root", ErrNotFile)
		}

		srcW, err := e.walkDirLocked(srcDirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(srcW.dir, acl.Lookup); err != nil {
			return err
		}
		dstW, err := e.walkDirLocked(dstDirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(dstW.dir, acl.Insert); err != nil {
			return err
		}

		releases, err := e.lockDirsLocked(srcW.dir.UUID, dstW.dir.UUID)
		if err != nil {
			return err
		}
		defer releases()
		srcW, err = e.reloadDirUnderLockLocked(srcDirs)
		if err != nil {
			return err
		}
		dstW, err = e.reloadDirUnderLockLocked(dstDirs)
		if err != nil {
			return err
		}

		entry, err := srcW.dir.Lookup(srcName, e.bucketLoaderFor(srcW.dir))
		if err != nil {
			if errors.Is(err, metadata.ErrEntryNotFound) {
				return fmt.Errorf("%w: %s", ErrNotFound, existingPath)
			}
			return err
		}
		if entry.Kind != metadata.KindFile {
			return fmt.Errorf("%w: %s", ErrNotFile, existingPath)
		}

		fRelease, err := e.lockObject(objName(entry.UUID))
		if err != nil {
			return fmt.Errorf("locking filenode: %w", err)
		}
		f, fv, err := e.loadFilenode(entry.UUID, srcW.dir.UUID)
		if err != nil {
			fRelease()
			return err
		}
		f.LinkCount++
		if err := e.flushFilenodeLocked(f, fv+1); err != nil {
			fRelease()
			return err
		}
		fRelease()

		newEntry := metadata.DirEntry{Name: dstName, UUID: entry.UUID, Kind: metadata.KindFile}
		if err := dstW.dir.Insert(newEntry, e.bucketLoaderFor(dstW.dir)); err != nil {
			if errors.Is(err, metadata.ErrEntryExists) {
				return fmt.Errorf("%w: %s", ErrExists, newPath)
			}
			return err
		}
		if err := e.flushDirnodeLocked(dstW.dir, dstW.version+1); err != nil {
			e.cache.invalidate(dstW.dir.UUID)
			return err
		}
		return nil
	})
}

// Rename moves a file, symlink, or directory to a new path
// (nexus_fs_rename). An existing file or symlink at the destination is
// replaced; an existing directory is an error.
func (e *Enclave) Rename(oldPath, newPath string) error {
	return e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		// Rename spans two directories (with replace semantics); it runs
		// eagerly on a drained set so its lock-ordered protocol sees no
		// deferred state.
		if err := e.drainWithRetryLocked(); err != nil {
			return err
		}
		srcDirs, srcName, err := splitPath(oldPath)
		if err != nil {
			return err
		}
		dstDirs, dstName, err := splitPath(newPath)
		if err != nil {
			return err
		}
		if srcName == "" || dstName == "" {
			return fmt.Errorf("enclave: cannot rename the volume root")
		}

		srcW, err := e.walkDirLocked(srcDirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(srcW.dir, acl.Delete); err != nil {
			return err
		}
		dstW, err := e.walkDirLocked(dstDirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(dstW.dir, acl.Insert); err != nil {
			return err
		}

		releases, err := e.lockDirsLocked(srcW.dir.UUID, dstW.dir.UUID)
		if err != nil {
			return err
		}
		defer releases()
		srcW, err = e.reloadDirUnderLockLocked(srcDirs)
		if err != nil {
			return err
		}
		sameDir := srcW.dir.UUID == dstW.dir.UUID
		if sameDir {
			dstW = srcW
		} else {
			dstW, err = e.reloadDirUnderLockLocked(dstDirs)
			if err != nil {
				return err
			}
		}

		entry, err := srcW.dir.Lookup(srcName, e.bucketLoaderFor(srcW.dir))
		if err != nil {
			if errors.Is(err, metadata.ErrEntryNotFound) {
				return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
			}
			return err
		}

		// Replace semantics at the destination.
		if existing, err := dstW.dir.Lookup(dstName, e.bucketLoaderFor(dstW.dir)); err == nil {
			if existing.UUID == entry.UUID && sameDir && srcName == dstName {
				return nil // rename onto itself
			}
			switch existing.Kind {
			case metadata.KindDir:
				return fmt.Errorf("%w: destination %s is a directory", ErrExists, newPath)
			case metadata.KindFile:
				if err := e.removeFileEntryLocked(dstW.dir, existing); err != nil {
					return err
				}
			case metadata.KindSymlink:
			}
			if _, err := dstW.dir.Remove(dstName, e.bucketLoaderFor(dstW.dir)); err != nil {
				return err
			}
		} else if !errors.Is(err, metadata.ErrEntryNotFound) {
			return err
		}

		if _, err := srcW.dir.Remove(srcName, e.bucketLoaderFor(srcW.dir)); err != nil {
			return err
		}
		moved := entry
		moved.Name = dstName
		if err := dstW.dir.Insert(moved, e.bucketLoaderFor(dstW.dir)); err != nil {
			return err
		}

		// Moving across directories re-parents the child's metadata so
		// the file-swap defence keeps holding (§IV-A3).
		if !sameDir {
			switch entry.Kind {
			case metadata.KindDir:
				child, cv, err := e.loadDirnode(entry.UUID, srcW.dir.UUID)
				if err != nil {
					return err
				}
				child.Parent = dstW.dir.UUID
				if err := e.flushDirnodeLocked(child, cv+1); err != nil {
					e.cache.invalidate(child.UUID)
					return err
				}
			case metadata.KindFile:
				f, fv, err := e.loadFilenode(entry.UUID, srcW.dir.UUID)
				if err != nil {
					return err
				}
				// Multi-link files already carry no parent binding.
				if f.LinkCount <= 1 && !f.Parent.IsNil() {
					f.Parent = dstW.dir.UUID
					if err := e.flushFilenodeLocked(f, fv+1); err != nil {
						e.cache.invalidate(f.UUID)
						return err
					}
				}
			case metadata.KindSymlink:
			}
		}

		if err := e.flushDirnodeLocked(srcW.dir, srcW.version+1); err != nil {
			e.cache.invalidate(srcW.dir.UUID)
			return err
		}
		if !sameDir {
			if err := e.flushDirnodeLocked(dstW.dir, dstW.version+1); err != nil {
				e.cache.invalidate(dstW.dir.UUID)
				return err
			}
		}
		return nil
	})
}

// removeFileEntryLocked drops a file's storage when its entry is being
// replaced (helper for Rename's overwrite case).
func (e *Enclave) removeFileEntryLocked(dir *metadata.Dirnode, entry metadata.DirEntry) error {
	release, err := e.lockObject(objName(entry.UUID))
	if err != nil {
		return fmt.Errorf("locking filenode: %w", err)
	}
	defer release()
	f, fv, err := e.loadFilenode(entry.UUID, dir.UUID)
	if err != nil {
		return err
	}
	if f.LinkCount > 1 {
		f.LinkCount--
		f.Parent = uuid.Nil
		return e.flushFilenodeLocked(f, fv+1)
	}
	if f.ContentDefined {
		// Chunk drops flush (and zeroed chunks delete) only after the
		// filenode object is off the store.
		e.casStageDecsLocked(f.Extents)
	} else if f.Size > 0 {
		if err := e.deleteObject(objName(f.DataUUID)); err != nil && !isNotExist(err) {
			return err
		}
	}
	if err := e.deleteObject(objName(entry.UUID)); err != nil {
		return err
	}
	e.cache.invalidate(entry.UUID)
	return e.casFinishEagerLocked()
}

// lockDirsLocked takes the store locks of one or two directories in a
// canonical order, avoiding lock cycles between concurrent renames.
func (e *Enclave) lockDirsLocked(a, b uuid.UUID) (func(), error) {
	names := []string{objName(a)}
	if b != a {
		names = append(names, objName(b))
		sort.Strings(names)
	}
	var releases []func()
	for _, n := range names {
		rel, err := e.lockObject(n)
		if err != nil {
			for i := len(releases) - 1; i >= 0; i-- {
				releases[i]()
			}
			return nil, fmt.Errorf("locking directory: %w", err)
		}
		releases = append(releases, rel)
	}
	return func() {
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}, nil
}

// defaultStreamPutCutoff is the write size from which WriteFile
// pipelines encryption into the upload on stream-capable stores (see
// Config.StreamPutCutoff). Below ~4 MiB the crypto time worth hiding
// is smaller than the extra per-segment network latency.
const defaultStreamPutCutoff = 4 << 20

func (e *Enclave) streamCutoffBytes() int {
	switch c := e.cfg.StreamPutCutoff; {
	case c == 0:
		return defaultStreamPutCutoff
	case c < 0:
		return int(^uint(0) >> 1) // never
	default:
		return c
	}
}

// encryptAndPutLocked seals data under f's freshly rotated contexts and
// uploads the sealed blob to f's data object. The sealed span is leased
// from the enclave's buffer arena — it is released (and back under the
// next leaseholder's feet) the moment the upload returns, which is safe
// because ObjectStore implementations never retain put buffers (see the
// interface's ownership rules). On stream-capable stores, writes at or
// above the streaming cutoff overlap chunk sealing with the upload.
func (e *Enclave) encryptAndPutLocked(f *metadata.Filenode, data []byte) error {
	// Content-defined files (and every write under the ContentDefined
	// knob) go through the dedup layer instead: once a file has an
	// extent list it stays content-defined even if the knob is later
	// turned off, so its chunks' refcounts keep balancing.
	if e.cfg.ContentDefined || f.ContentDefined {
		return e.writeFileCDCLocked(f, data)
	}
	name := objName(f.DataUUID)
	sealedLen := f.SealedSize(len(data))
	buf := e.arena.Get(sealedLen)
	defer buf.Release()

	if ss, ok := e.store.(StreamObjectStore); ok && len(data) >= e.streamCutoffBytes() {
		if err := e.streamPutLocked(ss, f, buf.B, data, name); err != nil {
			return err
		}
		e.metrics.dataBytes.Add(int64(sealedLen))
		return nil
	}

	blob, err := e.timedChunkCrypto(len(data), func() ([]byte, error) {
		return f.EncryptContentInto(buf.B, data, e.cfg.CryptoWorkers)
	})
	if err != nil {
		return err
	}
	if _, err := e.putDataObject(name, blob); err != nil {
		return fmt.Errorf("uploading data object: %w", err)
	}
	e.metrics.dataBytes.Add(int64(len(blob)))
	return nil
}

// streamPutLocked runs the encrypt-while-upload pipeline: workers seal
// chunks into dst while the store drains the completed prefix through
// the stream put. The chunk-crypto histogram records the sealing time
// alone (the stream stamps it when the last chunk lands), so streamed
// writes don't pollute the crypto latency distribution with network
// time; the surrounding ocall meter captures the fused transfer.
func (e *Enclave) streamPutLocked(ss StreamObjectStore, f *metadata.Filenode, dst, data []byte, name string) error {
	var chunks int64
	if cs := int64(e.cfg.ChunkSize); len(data) > 0 && cs > 0 {
		chunks = (int64(len(data)) + cs - 1) / cs
	}
	span := e.metrics.tracer.Begin("enclave.chunkcrypto")
	span.SetTagInt("chunks", chunks)
	span.SetTagInt("workers", int64(e.cfg.CryptoWorkers))
	span.SetTagInt("streamed", 1)
	defer span.End()

	stream, err := f.EncryptContentStream(dst, data, e.cfg.CryptoWorkers)
	if err != nil {
		return err
	}
	putErr := e.timedOcall(e.metrics.dataIO, func() error {
		_, err := ss.PutVersionedStream(name, f.SealedSize(len(data)), stream.Next)
		return err
	})
	// Always wait out the sealing workers before the pooled dst can be
	// released by our caller — even when the upload failed, the workers
	// are still writing into it.
	sealErr := stream.Wait()
	e.metrics.chunkLat.Record(stream.CryptoDuration())
	e.metrics.chunks.Add(chunks)
	if sealErr != nil {
		return sealErr
	}
	if putErr != nil {
		return fmt.Errorf("uploading data object: %w", putErr)
	}
	return nil
}

// timedChunkCrypto meters one pass of the chunk-crypto pipeline: a
// span tagged with chunk count and worker width, the cumulative chunk
// counter, and the pipeline latency histogram. plainLen is the
// plaintext length the pipeline processes (the write payload, or the
// filenode size on reads).
func (e *Enclave) timedChunkCrypto(plainLen int, fn func() ([]byte, error)) ([]byte, error) {
	var chunks int64
	if cs := int64(e.cfg.ChunkSize); plainLen > 0 && cs > 0 {
		chunks = (int64(plainLen) + cs - 1) / cs
	}
	span := e.metrics.tracer.Begin("enclave.chunkcrypto")
	span.SetTagInt("chunks", chunks)
	span.SetTagInt("workers", int64(e.cfg.CryptoWorkers))
	start := time.Now()
	out, err := fn()
	e.metrics.chunkLat.Record(time.Since(start))
	e.metrics.chunks.Add(chunks)
	span.End()
	return out, err
}

// WriteFile replaces a file's contents (nexus_fs_encrypt): every chunk
// is re-encrypted with fresh keys, the ciphertext is uploaded, and the
// filenode is re-sealed.
func (e *Enclave) WriteFile(path string, data []byte) error {
	return e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		dirs, name, err := splitPath(path)
		if err != nil {
			return err
		}
		if name == "" {
			return fmt.Errorf("%w: %s", ErrNotFile, path)
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(w.dir, acl.Write); err != nil {
			return err
		}
		entry, err := w.dir.Lookup(name, e.bucketLoaderFor(w.dir))
		if err != nil {
			if errors.Is(err, metadata.ErrEntryNotFound) {
				return fmt.Errorf("%w: %s", ErrNotFound, path)
			}
			return err
		}
		if entry.Kind != metadata.KindFile {
			return fmt.Errorf("%w: %s", ErrNotFile, path)
		}

		// A write to a still-pending created file updates the in-memory
		// filenode (fresh keys, new size) and uploads only the data
		// object; the filenode rides out with the next batch drain. No
		// store lock: the object does not exist on the store yet, so no
		// other client can race on it. Writes to on-store files stay
		// fully eager — their filenode seals carry freshly rotated keys
		// that must not sit deferred in enclave memory.
		if e.wb != nil {
			if n, ok := e.wb.nodes[entry.UUID]; ok && n.file != nil {
				f := n.file
				if err := e.encryptAndPutLocked(f, data); err != nil {
					return err
				}
				return e.maybeDrainLocked()
			}
		}

		release, err := e.lockObject(objName(entry.UUID))
		if err != nil {
			return fmt.Errorf("locking filenode: %w", err)
		}
		defer release()

		f, fv, err := e.loadFilenode(entry.UUID, w.dir.UUID)
		if err != nil {
			return err
		}
		// Any failure past this point leaves the cached filenode with
		// freshly rotated in-memory keys the store never saw — drop it.
		if err := e.encryptAndPutLocked(f, data); err != nil {
			e.cache.invalidate(f.UUID)
			return err
		}
		if err := e.flushFilenodeLocked(f, fv+1); err != nil {
			e.cache.invalidate(f.UUID)
			return err
		}
		// The filenode is durable; replaced CDC chunks may now drop
		// (no-op for fixed-size writes and in write-back mode).
		return e.casFinishEagerLocked()
	})
}

// ReadFile returns a file's decrypted contents (nexus_fs_decrypt) after
// the Read ACL check.
func (e *Enclave) ReadFile(path string) ([]byte, error) {
	var out []byte
	err := e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		dirs, name, err := splitPath(path)
		if err != nil {
			return err
		}
		if name == "" {
			return fmt.Errorf("%w: %s", ErrNotFile, path)
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(w.dir, acl.Read); err != nil {
			return err
		}
		entry, err := w.dir.Lookup(name, e.bucketLoaderFor(w.dir))
		if err != nil {
			if errors.Is(err, metadata.ErrEntryNotFound) {
				return fmt.Errorf("%w: %s", ErrNotFound, path)
			}
			return err
		}
		if entry.Kind != metadata.KindFile {
			return fmt.Errorf("%w: %s", ErrNotFile, path)
		}
		f, _, err := e.loadFilenode(entry.UUID, w.dir.UUID)
		if err != nil {
			return err
		}
		if f.Size == 0 {
			out = []byte{}
			return nil
		}
		if f.ContentDefined {
			out, err = e.readFileCDCLocked(f)
			return err
		}
		blob, _, err := e.fetchDataObject(objName(f.DataUUID))
		if err != nil {
			return fmt.Errorf("fetching data object: %w", err)
		}
		out, err = e.timedChunkCrypto(int(f.Size), func() ([]byte, error) {
			return f.DecryptContentWorkers(blob, e.cfg.CryptoWorkers)
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetACL grants (or with acl.None revokes) a user's rights on a
// directory. Only the owner or a user holding Administer on the
// directory may change its ACL; the update re-encrypts one metadata
// object, which is the paper's entire revocation cost (§VII-E).
func (e *Enclave) SetACL(dirPath, userName string, rights acl.Rights) error {
	return e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		// Revocation must not leave any pre-revocation metadata pending:
		// drain first, then re-seal the directory eagerly (§VII-E).
		if err := e.drainWithRetryLocked(); err != nil {
			return err
		}
		dirs, base, err := splitPath(dirPath)
		if err != nil {
			return err
		}
		if base != "" {
			dirs = append(dirs, base)
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if !e.isOwnerLocked() {
			if err := e.checkACLLocked(w.dir, acl.Administer); err != nil {
				return err
			}
		}
		target, err := e.super.FindUserByName(userName)
		if err != nil {
			return err
		}

		release, err := e.lockObject(objName(w.dir.UUID))
		if err != nil {
			return fmt.Errorf("locking directory: %w", err)
		}
		defer release()
		w, err = e.reloadDirUnderLockLocked(dirs)
		if err != nil {
			return err
		}
		w.dir.ACL.Set(target.ID, rights)
		if err := e.flushDirnodeLocked(w.dir, w.version+1); err != nil {
			e.cache.invalidate(w.dir.UUID)
			return err
		}
		return nil
	})
}

// GetACL returns a directory's ACL entries resolved to usernames.
func (e *Enclave) GetACL(dirPath string) (map[string]acl.Rights, error) {
	out := make(map[string]acl.Rights)
	err := e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		dirs, base, err := splitPath(dirPath)
		if err != nil {
			return err
		}
		if base != "" {
			dirs = append(dirs, base)
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if err := e.checkACLLocked(w.dir, acl.Lookup); err != nil {
			return err
		}
		for _, entry := range w.dir.ACL.Entries() {
			name := fmt.Sprintf("uid:%d", entry.UserID)
			if acl.IsGroupEntry(entry.UserID) {
				name = fmt.Sprintf("group:%d", acl.GroupLeaf(entry.UserID))
			} else if u, err := e.super.FindUserByID(entry.UserID); err == nil {
				name = u.Name
			}
			out[name] = entry.Rights
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
