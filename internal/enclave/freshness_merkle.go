package enclave

import (
	"fmt"

	"nexus/internal/merkle"
	"nexus/internal/metadata"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// Merkle freshness mode (Config.FreshnessMerkle, DESIGN.md §15) is the
// scalable successor to the flat table in freshness.go. The flat design
// re-reads and re-uploads the entire uuid→version table on every check
// and update — O(n) transfer per operation, with the whole table
// resident wherever it is verified. Here the enclave instead holds a
// single commitment to that table: the root of a canonical Merkle tree
// (internal/merkle) plus a monotonic epoch counter. The untrusted side
// keeps the tree itself and serves O(log n) inclusion proofs:
//
//   - every metadata load verifies a membership (or absence) proof for
//     the object against the enclave-resident root before the object's
//     version is trusted;
//   - every metadata flush batch advances the root *inside* the
//     enclave, by folding each update's proof (merkle.Proof.NewRoot)
//     against the previous root — the enclave never needs the tree;
//   - the new root is sealed with the volume rootkey and uploaded as
//     its own store object, so a freshly mounted enclave of the same
//     volume recovers the commitment and the epoch ordering.
//
// Trust boundary: proofs and the tree snapshot live untrusted and are
// only ever *verified* in here; the sealed root object is
// integrity-protected by the rootkey AEAD, and rollback of the root
// itself is caught by the in-enclave epoch (ErrStaleObject). A forked
// server can still replay a sealed root from a *different* client's
// history at a higher epoch — the classic fork-consistency bound the
// paper accepts (§VI-C); divergence is detected the moment the two
// histories meet (same epoch, different root).

// MerkleRootObjectName is the store name of the sealed merkle root.
const MerkleRootObjectName = "freshness-root"

// merkleRootID keys the sealed root object's preamble, mirroring
// freshTableID for the flat table.
var merkleRootID = uuid.UUID{0xff, 0xfd}

// FreshnessProofStore is the ocall surface merkle freshness mode
// requires: an ObjectStore that also maintains the freshness tree and
// serves proofs against it (implemented by vfs.FreshnessStore).
type FreshnessProofStore interface {
	ObjectStore
	// FreshnessProof returns the encoded membership/absence proof for
	// id against the tree at the given epoch (the enclave's current
	// root). Serving any other epoch's proof simply fails verification.
	FreshnessProof(id uuid.UUID, epoch uint64) ([]byte, error)
	// FreshnessUpdate applies the batch to the tree at the given epoch,
	// returning one encoded proof per update, each valid against the
	// tree state after the updates before it — exactly what the enclave
	// folds into its next root.
	FreshnessUpdate(epoch uint64, updates []merkle.LeafUpdate) ([][]byte, error)
}

// merkleRootFormat versions the sealed root body.
const merkleRootFormat = 1

func encodeMerkleRoot(root [merkle.HashSize]byte, epoch uint64) []byte {
	w := serial.NewWriter(1 + merkle.HashSize + 8)
	w.WriteUint8(merkleRootFormat)
	w.WriteRaw(root[:])
	w.WriteUint64(epoch)
	return w.Bytes()
}

func decodeMerkleRoot(body []byte) (root [merkle.HashSize]byte, epoch uint64, err error) {
	r := serial.NewReader(body)
	if f := r.ReadUint8("merkle root format"); r.Err() == nil && f != merkleRootFormat {
		return root, 0, fmt.Errorf("%w: unknown merkle root format %d", metadata.ErrMalformed, f)
	}
	r.ReadRawInto(root[:], "merkle root hash")
	epoch = r.ReadUint64("merkle root epoch")
	if ferr := r.Finish(); ferr != nil {
		return root, 0, fmt.Errorf("decoding merkle root: %w", ferr)
	}
	return root, epoch, nil
}

// loadMerkleRootLocked establishes the enclave's root commitment. With
// force false a commitment already in enclave memory is kept; force
// true re-reads the store (under the root object's lock, or when a
// proof failed and another client may have advanced the epoch). The
// epoch ordering is enforced here: once this enclave has seen epoch N,
// any sealed root below N — or a *different* root at exactly N, the
// fork signature — is a rollback and fails closed.
func (e *Enclave) loadMerkleRootLocked(force bool) error {
	if e.mkSeen && !force {
		return nil
	}
	blob, _, err := e.fetchObject(MerkleRootObjectName)
	if err != nil {
		if isNotExist(err) {
			if e.mkSeen && e.mkEpoch > 0 {
				return fmt.Errorf("%w: merkle root object vanished after epoch %d", ErrStaleObject, e.mkEpoch)
			}
			e.mkRoot, e.mkEpoch, e.mkSeen = merkle.EmptyRoot(), 0, true
			return nil
		}
		return fmt.Errorf("fetching merkle root: %w", err)
	}
	p, body, err := metadata.Open(e.rootKey, blob)
	if err != nil {
		return fmt.Errorf("verifying merkle root: %w", err)
	}
	if p.Type != metadata.TypeFreshness || p.UUID != merkleRootID {
		return fmt.Errorf("%w: object %q is not the merkle root", metadata.ErrTampered, MerkleRootObjectName)
	}
	root, epoch, err := decodeMerkleRoot(body)
	if err != nil {
		return err
	}
	if epoch != p.Version {
		return fmt.Errorf("%w: merkle root epoch %d != sealed version %d", metadata.ErrTampered, epoch, p.Version)
	}
	if e.mkSeen {
		if epoch < e.mkEpoch {
			return fmt.Errorf("%w: merkle root epoch %d < seen %d", ErrStaleObject, epoch, e.mkEpoch)
		}
		if epoch == e.mkEpoch && root != e.mkRoot {
			return fmt.Errorf("%w: merkle root diverged at epoch %d (fork detected)", ErrStaleObject, epoch)
		}
	}
	e.mkRoot, e.mkEpoch, e.mkSeen = root, epoch, true
	return nil
}

// checkFreshnessMerkleLocked verifies a loaded object's version against
// the root commitment: the store must produce a proof that either binds
// id to a leaf version ≤ the loaded version, or proves id absent
// (objects newer than the last committed batch; their own AEAD protects
// them, as in the flat design). A first failure triggers one forced
// root reload — another client of the same volume may have advanced the
// epoch — then fails closed: ErrStaleObject for a proven-stale version,
// ErrBadProof for anything that does not verify.
func (e *Enclave) checkFreshnessMerkleLocked(id uuid.UUID, version uint64) error {
	for attempt := 0; ; attempt++ {
		if err := e.loadMerkleRootLocked(attempt > 0); err != nil {
			return err
		}
		var raw []byte
		epoch := e.mkEpoch
		err := e.timedOcall(e.metrics.metaIO, func() error {
			var err error
			raw, err = e.proofStore.FreshnessProof(id, epoch)
			return err
		})
		var verr error
		if err == nil {
			e.metrics.proofs.Inc()
			e.metrics.proofBytes.Add(int64(len(raw)))
			var p *merkle.Proof
			if p, verr = merkle.DecodeProof(raw); verr == nil {
				var leafV uint64
				var present bool
				if leafV, present, verr = p.Verify(e.mkRoot, id); verr == nil {
					if present && version < leafV {
						return fmt.Errorf("%w: object %s at version %d, merkle leaf requires %d",
							ErrStaleObject, id, version, leafV)
					}
					return nil
				}
			}
		}
		if attempt == 0 {
			continue
		}
		if err != nil {
			return fmt.Errorf("%w: no freshness proof for %s at epoch %d: %v", ErrBadProof, id, epoch, err)
		}
		return fmt.Errorf("%w: freshness proof for %s: %v", ErrBadProof, id, verr)
	}
}

// recordFreshnessMerkleLocked commits a batch of version updates to the
// tree and advances the enclave root. The batch is ordered
// deterministically, the untrusted store applies it and returns one
// proof per update, and the enclave folds each verified proof into the
// next root (merkle.Proof.NewRoot) — O(batch · log n) work against
// O(1) enclave state. The new root seals at epoch+1 under the root
// object's store lock, serializing concurrent writers of the volume.
func (e *Enclave) recordFreshnessMerkleLocked(updates map[uuid.UUID]uint64) error {
	if len(updates) == 0 {
		return nil
	}
	ids := make([]uuid.UUID, 0, len(updates))
	for id := range updates {
		ids = append(ids, id)
	}
	sortUUIDs(ids)
	batch := make([]merkle.LeafUpdate, 0, len(ids))
	for _, id := range ids {
		batch = append(batch, merkle.LeafUpdate{ID: id, Version: updates[id]})
	}

	release, err := e.lockObject(MerkleRootObjectName)
	if err != nil {
		return fmt.Errorf("locking merkle root: %w", err)
	}
	defer release()
	// Always re-read under the lock: another client may have advanced
	// the epoch since the commitment was last loaded.
	if err := e.loadMerkleRootLocked(true); err != nil {
		return err
	}

	var proofs [][]byte
	epoch := e.mkEpoch
	if err := e.timedOcall(e.metrics.metaIO, func() error {
		var err error
		proofs, err = e.proofStore.FreshnessUpdate(epoch, batch)
		return err
	}); err != nil {
		return fmt.Errorf("merkle freshness update: %w", err)
	}
	if len(proofs) != len(batch) {
		return fmt.Errorf("%w: %d proofs for %d updates", ErrBadProof, len(proofs), len(batch))
	}
	root := e.mkRoot
	for i, raw := range proofs {
		e.metrics.proofBytes.Add(int64(len(raw)))
		p, err := merkle.DecodeProof(raw)
		if err != nil {
			return fmt.Errorf("%w: update proof %d: %v", ErrBadProof, i, err)
		}
		if root, err = p.NewRoot(root, batch[i].ID, batch[i].Version); err != nil {
			return fmt.Errorf("%w: update proof %d for %s: %v", ErrBadProof, i, batch[i].ID, err)
		}
	}

	next := epoch + 1
	blob, err := metadata.Seal(e.rootKey, metadata.Preamble{
		Type:    metadata.TypeFreshness,
		UUID:    merkleRootID,
		Version: next,
	}, encodeMerkleRoot(root, next))
	if err != nil {
		return fmt.Errorf("sealing merkle root: %w", err)
	}
	if _, err := e.putObject(MerkleRootObjectName, blob); err != nil {
		// The tree already advanced but the commitment did not: the
		// store wrapper keeps the previous epoch reachable (its undo
		// log), so proofs against the still-current root keep verifying
		// and a retried batch converges on the same root.
		return fmt.Errorf("uploading merkle root: %w", err)
	}
	e.mkRoot, e.mkEpoch, e.mkSeen = root, next, true
	e.metrics.rootUpdates.Inc()
	e.metrics.metadataFlushes.Inc()
	e.metrics.metadataBytes.Add(int64(len(blob)))
	return nil
}
