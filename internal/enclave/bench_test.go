package enclave

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"testing"

	"nexus/internal/sgx"
)

// newBenchVolume builds a mounted volume over a memory store with no
// simulated costs, isolating the enclave's own work.
func newBenchVolume(b *testing.B) *Enclave {
	b.Helper()
	store := newMemObjectStore()
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	container, err := platform.CreateEnclave(nexusImage)
	if err != nil {
		b.Fatal(err)
	}
	encl, err := New(Config{SGX: container, Store: store})
	if err != nil {
		b.Fatal(err)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	owner := identity{name: "owner", pub: pub, priv: priv}
	sealed, err := encl.CreateVolume("owner", owner.pub)
	if err != nil {
		b.Fatal(err)
	}
	volID, err := encl.VolumeUUID()
	if err != nil {
		b.Fatal(err)
	}
	nonce, blob, err := encl.BeginAuth(owner.pub, sealed, volID)
	if err != nil {
		b.Fatal(err)
	}
	msg := append(append([]byte(nil), nonce...), blob...)
	sig, err := owner.signer()(msg)
	if err != nil {
		b.Fatal(err)
	}
	if err := encl.CompleteAuth(sig); err != nil {
		b.Fatal(err)
	}
	return encl
}

func BenchmarkEnclaveTouch(b *testing.B) {
	e := newBenchVolume(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Touch(fmt.Sprintf("/f%08d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnclaveWriteFile64KiB(b *testing.B) {
	e := newBenchVolume(b)
	if err := e.Touch("/f"); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.WriteFile("/f", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnclaveReadFile64KiB(b *testing.B) {
	e := newBenchVolume(b)
	if err := e.Touch("/f"); err != nil {
		b.Fatal(err)
	}
	if err := e.WriteFile("/f", make([]byte, 64<<10)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ReadFile("/f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnclaveLookupDeepPath(b *testing.B) {
	e := newBenchVolume(b)
	p := ""
	for i := 0; i < 8; i++ {
		p += fmt.Sprintf("/d%d", i)
		if err := e.Mkdir(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Touch(p + "/leaf"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Lookup(p + "/leaf"); err != nil {
			b.Fatal(err)
		}
	}
}
