package enclave

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"sync"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
)

// memObjectStore adapts backend.MemStore to the enclave's versioned
// ocall surface for tests.
type memObjectStore struct {
	mem *backend.MemStore

	mu       sync.Mutex
	versions map[string]uint64
}

func newMemObjectStore() *memObjectStore {
	return &memObjectStore{mem: backend.NewMemStore(), versions: make(map[string]uint64)}
}

func (s *memObjectStore) GetVersioned(name string) ([]byte, uint64, error) {
	data, err := s.mem.Get(name)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	v := s.versions[name]
	s.mu.Unlock()
	return data, v, nil
}

func (s *memObjectStore) PutVersioned(name string, data []byte) (uint64, error) {
	if err := s.mem.Put(name, data); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.versions[name]++
	v := s.versions[name]
	s.mu.Unlock()
	return v, nil
}

func (s *memObjectStore) Delete(name string) error { return s.mem.Delete(name) }

func (s *memObjectStore) Lock(name string) (func(), error) { return s.mem.Lock(name) }

// identity is a test user: a named Ed25519 keypair.
type identity struct {
	name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

func newIdentity(t *testing.T, name string) identity {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return identity{name: name, pub: pub, priv: priv}
}

func (id identity) signer() Signer {
	return func(msg []byte) ([]byte, error) {
		return ed25519.Sign(id.priv, msg), nil
	}
}

// nexusImage is the enclave code identity used across tests; exchanges
// require both parties to run the same measurement.
var nexusImage = sgx.Image{Name: "nexus-enclave", Version: 1, Code: []byte("nexus enclave code v1")}

// testEnv bundles one client's NEXUS stack.
type testEnv struct {
	ias      *sgx.AttestationService
	platform *sgx.Platform
	enclave  *Enclave
	store    *memObjectStore
}

// newTestEnv builds an enclave on a fresh platform over the given store
// (shared stores simulate the common storage service).
func newTestEnv(t *testing.T, ias *sgx.AttestationService, store *memObjectStore) *testEnv {
	t.Helper()
	if ias == nil {
		var err error
		ias, err = sgx.NewAttestationService()
		if err != nil {
			t.Fatal(err)
		}
	}
	if store == nil {
		store = newMemObjectStore()
	}
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, ias)
	if err != nil {
		t.Fatal(err)
	}
	container, err := platform.CreateEnclave(nexusImage)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := New(Config{SGX: container, Store: store, IAS: ias})
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{ias: ias, platform: platform, enclave: encl, store: store}
}

// authenticate runs the full challenge–response for a user.
func authenticate(t *testing.T, e *Enclave, id identity, sealedRootKey []byte, volumeID uuid.UUID) error {
	t.Helper()
	nonce, superBlob, err := e.BeginAuth(id.pub, sealedRootKey, volumeID)
	if err != nil {
		return err
	}
	msg := append(append([]byte(nil), nonce...), superBlob...)
	return e.CompleteAuth(ed25519.Sign(id.priv, msg))
}

// newMountedVolume creates a volume owned by owner and authenticates.
func newMountedVolume(t *testing.T, owner identity) (*testEnv, []byte, uuid.UUID) {
	t.Helper()
	env := newTestEnv(t, nil, nil)
	sealed, err := env.enclave.CreateVolume(owner.name, owner.pub)
	if err != nil {
		t.Fatalf("CreateVolume: %v", err)
	}
	volID, err := peekVolumeID(t, env, owner, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, env.enclave, owner, sealed, volID); err != nil {
		t.Fatalf("authenticate: %v", err)
	}
	return env, sealed, volID
}

// peekVolumeID recovers the volume UUID after CreateVolume (the enclave
// already holds the supernode).
func peekVolumeID(t *testing.T, env *testEnv, owner identity, sealed []byte) (uuid.UUID, error) {
	t.Helper()
	return env.enclave.VolumeUUID()
}

func TestCreateVolumeAndAuthenticate(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, sealed, volID := newMountedVolume(t, owner)

	u, err := env.enclave.CurrentUser()
	if err != nil {
		t.Fatalf("CurrentUser: %v", err)
	}
	if u.Name != "owen" || u.ID != 1 {
		t.Fatalf("user = %+v", u)
	}
	if volID.IsNil() {
		t.Fatal("nil volume id")
	}
	if len(sealed) == 0 {
		t.Fatal("empty sealed rootkey")
	}
	// The sealed blob must not contain key material recognizable as the
	// rootkey; minimally it must differ from any stored object.
	if bytes.Contains(sealed, []byte("supernode")) {
		t.Fatal("sealed rootkey looks like plaintext")
	}
}

func TestAuthRejectsUnauthorizedKey(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, sealed, volID := newMountedVolume(t, owner)

	mallory := newIdentity(t, "mallory")
	err := authenticate(t, env.enclave, mallory, sealed, volID)
	if !errors.Is(err, ErrBadAuth) {
		t.Fatalf("unauthorized auth = %v, want ErrBadAuth", err)
	}
}

func TestAuthRejectsWrongSignature(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, sealed, volID := newMountedVolume(t, owner)

	nonce, superBlob, err := env.enclave.BeginAuth(owner.pub, sealed, volID)
	if err != nil {
		t.Fatal(err)
	}
	// Signature over the wrong message (missing the supernode blob).
	_ = superBlob
	sig := ed25519.Sign(owner.priv, nonce)
	if err := env.enclave.CompleteAuth(sig); !errors.Is(err, ErrBadAuth) {
		t.Fatalf("wrong-message signature accepted: %v", err)
	}
}

func TestAuthNonceSingleUse(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, sealed, volID := newMountedVolume(t, owner)

	nonce, superBlob, err := env.enclave.BeginAuth(owner.pub, sealed, volID)
	if err != nil {
		t.Fatal(err)
	}
	msg := append(append([]byte(nil), nonce...), superBlob...)
	sig := ed25519.Sign(owner.priv, msg)
	if err := env.enclave.CompleteAuth(sig); err != nil {
		t.Fatal(err)
	}
	// Replaying the same signature must fail: the challenge is consumed.
	if err := env.enclave.CompleteAuth(sig); !errors.Is(err, ErrBadAuth) {
		t.Fatalf("replayed CompleteAuth = %v, want ErrBadAuth", err)
	}
}

func TestSealedRootKeyBoundToPlatform(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, sealed, volID := newMountedVolume(t, owner)

	// A different machine (same IAS, same store) cannot unseal.
	other := newTestEnv(t, env.ias, env.store)
	err := authenticate(t, other.enclave, owner, sealed, volID)
	if !errors.Is(err, ErrBadAuth) {
		t.Fatalf("cross-platform unseal = %v, want ErrBadAuth", err)
	}
}

func TestOperationsRequireAuth(t *testing.T) {
	env := newTestEnv(t, nil, nil)
	owner := newIdentity(t, "owen")
	if _, err := env.enclave.CreateVolume(owner.name, owner.pub); err != nil {
		t.Fatal(err)
	}
	// Volume exists but nobody authenticated.
	if err := env.enclave.Touch("/f"); !errors.Is(err, ErrNotAuthenticated) {
		t.Fatalf("Touch without auth = %v", err)
	}
	if _, err := env.enclave.ReadFile("/f"); !errors.Is(err, ErrNotAuthenticated) {
		t.Fatalf("ReadFile without auth = %v", err)
	}
	if _, err := env.enclave.AddUser("x", newIdentity(t, "x").pub); !errors.Is(err, ErrNotAuthenticated) {
		t.Fatalf("AddUser without auth = %v", err)
	}
}

func TestOperationsRequireMount(t *testing.T) {
	env := newTestEnv(t, nil, nil)
	if err := env.enclave.Touch("/f"); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("Touch without volume = %v", err)
	}
}

func TestUserManagementOwnerOnly(t *testing.T) {
	owner := newIdentity(t, "owen")
	alice := newIdentity(t, "alice")
	env, sealed, volID := newMountedVolume(t, owner)

	if _, err := env.enclave.AddUser("alice", alice.pub); err != nil {
		t.Fatalf("AddUser: %v", err)
	}
	users, err := env.enclave.ListUsers()
	if err != nil || len(users) != 2 {
		t.Fatalf("ListUsers = %v, %v", users, err)
	}

	// Alice authenticates on her "machine" — same platform suffices here
	// since she has the sealed key locally in this test.
	if err := authenticate(t, env.enclave, alice, sealed, volID); err != nil {
		t.Fatalf("alice auth: %v", err)
	}
	// Alice is not the owner: user administration must be denied.
	if _, err := env.enclave.AddUser("bob", newIdentity(t, "bob").pub); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("non-owner AddUser = %v", err)
	}
	if err := env.enclave.RemoveUser("alice"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("non-owner RemoveUser = %v", err)
	}
}

func TestRevokedUserCannotAuth(t *testing.T) {
	owner := newIdentity(t, "owen")
	alice := newIdentity(t, "alice")
	env, sealed, volID := newMountedVolume(t, owner)

	if _, err := env.enclave.AddUser("alice", alice.pub); err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, env.enclave, alice, sealed, volID); err != nil {
		t.Fatalf("pre-revocation auth: %v", err)
	}

	// Owner revokes alice: a single supernode update.
	if err := authenticate(t, env.enclave, owner, sealed, volID); err != nil {
		t.Fatal(err)
	}
	if err := env.enclave.RemoveUser("alice"); err != nil {
		t.Fatalf("RemoveUser: %v", err)
	}
	// Even with the sealed rootkey in hand, alice's auth now fails —
	// her key is gone from the supernode.
	if err := authenticate(t, env.enclave, alice, sealed, volID); !errors.Is(err, ErrBadAuth) {
		t.Fatalf("post-revocation auth = %v, want ErrBadAuth", err)
	}
}

func TestRollbackDetected(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)

	// Snapshot the supernode, make an update, then restore the old blob
	// (a malicious server re-serving stale state).
	oldBlob, _, err := env.store.GetVersioned(SupernodeObjectName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.enclave.AddUser("alice", newIdentity(t, "alice").pub); err != nil {
		t.Fatal(err)
	}
	if _, err := env.store.PutVersioned(SupernodeObjectName, oldBlob); err != nil {
		t.Fatal(err)
	}
	// The next supernode-touching operation must detect the rollback.
	_, err = env.enclave.AddUser("bob", newIdentity(t, "bob").pub)
	if !errors.Is(err, ErrStaleMetadata) {
		t.Fatalf("rollback = %v, want ErrStaleMetadata", err)
	}
}

func TestDirnodeRollbackDetected(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/docs/a"); err != nil {
		t.Fatal(err)
	}
	// Find the /docs dirnode object: snapshot everything, mutate, diff.
	names, err := env.store.mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make(map[string][]byte)
	for _, n := range names {
		b, _, err := env.store.GetVersioned(n)
		if err != nil {
			t.Fatal(err)
		}
		snapshot[n] = b
	}
	if err := e.Touch("/docs/b"); err != nil {
		t.Fatal(err)
	}
	// Roll every changed object back to the snapshot.
	for n, b := range snapshot {
		cur, _, err := env.store.GetVersioned(n)
		if err != nil {
			continue
		}
		if !bytes.Equal(cur, b) {
			if _, err := env.store.PutVersioned(n, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Accessing /docs must now trip the freshness check.
	_, err = e.Filldir("/docs")
	if !errors.Is(err, ErrStaleMetadata) {
		t.Fatalf("dirnode rollback = %v, want ErrStaleMetadata", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave
	e.ResetStats()

	if err := e.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/d/f", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.MetadataFlushes == 0 || st.MetadataBytesWritten == 0 {
		t.Fatalf("metadata stats empty: %+v", st)
	}
	// 1000 plaintext bytes seal into one chunk of ciphertext plus its
	// 16-byte inline tag.
	if st.DataBytesWritten != 1016 {
		t.Fatalf("DataBytesWritten = %d, want 1016", st.DataBytesWritten)
	}
	if e.SGX().EcallCount() == 0 || e.SGX().OcallCount() == 0 {
		t.Fatal("transition counters empty")
	}
}
