// Property test: merkle freshness mode against the flat-table oracle.
// Two full enclave stacks — one Config.FreshnessMerkle, one
// Config.FreshnessTree — consume an identical seeded operation stream
// (mutations, reads, cache drops, remounts, and stale-replay attacks)
// and must return identical accept/reject verdicts for every step.
// Reproduce a failure with NEXUS_MERKLE_SEED=<seed>.
package enclave_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"nexus/internal/enclave"
	"nexus/internal/vfs"
)

func merklePropSeed(t *testing.T) int64 {
	t.Helper()
	raw := os.Getenv("NEXUS_MERKLE_SEED")
	if raw == "" {
		return 1
	}
	seed, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("NEXUS_MERKLE_SEED=%q: %v", raw, err)
	}
	return seed
}

// oracleClient is the flat-table twin of merkleClient: the same stack
// over the same kind of malicious store, but with the O(n) freshness
// table the merkle mode replaces.
func newOracleClient(t *testing.T) *merkleClient {
	t.Helper()
	c := newMerkleClient(t)
	// Rebuild everything in flat mode over a fresh store.
	raw := newRawStore()
	c2 := &merkleClient{
		ias:  c.ias,
		plat: c.plat,
		raw:  raw,
		reg:  c.reg,
		pub:  c.pub,
		priv: c.priv,
	}
	container, err := c2.plat.CreateEnclave(rollbackImage)
	if err != nil {
		t.Fatal(err)
	}
	e, err := enclave.New(enclave.Config{
		SGX:           container,
		Store:         raw,
		IAS:           c2.ias,
		FreshnessTree: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c2.encl = e
	sealed, err := e.CreateVolume("owen", c2.pub)
	if err != nil {
		t.Fatal(err)
	}
	c2.sealed = sealed
	if c2.volID, err = e.VolumeUUID(); err != nil {
		t.Fatal(err)
	}
	if err := c2.mount(e); err != nil {
		t.Fatal(err)
	}
	return c2
}

func TestPropertyMerkleVsFlatTableOracle(t *testing.T) {
	seed := merklePropSeed(t)
	rng := rand.New(rand.NewSource(seed))

	mc := newMerkleClient(t) // system under test
	fc := newOracleClient(t) // oracle

	// both runs one operation on both stacks and demands verdict
	// parity; it returns the merkle-side error for further checks.
	both := func(op string, f func(e *enclave.Enclave) error) error {
		errM := f(mc.encl)
		errF := f(fc.encl)
		if (errM == nil) != (errF == nil) {
			t.Fatalf("seed %d, %s: merkle=%v, flat oracle=%v", seed, op, errM, errF)
		}
		return errM
	}

	dirs := []string{"/"}
	var files []string
	pick := func(set []string) string { return set[rng.Intn(len(set))] }
	join := func(dir, name string) string {
		if dir == "/" {
			return "/" + name
		}
		return dir + "/" + name
	}

	// Freshness-carrying objects are never rolled back by the stale
	// replay: the flat table's own rollback handling differs by design
	// (seq counters vs epochs), and the property under test is verdict
	// parity on *metadata* freshness.
	excluded := map[string]bool{
		enclave.FreshnessObjectName:  true,
		enclave.MerkleRootObjectName: true,
		vfs.FreshnessTreeObjectName:  true,
	}

	var snapM, snapF storeSnapshot
	var haveSnap bool

	const ops = 250
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 15: // mkdir
			path := join(pick(dirs), fmt.Sprintf("d%d", i))
			if both("mkdir "+path, func(e *enclave.Enclave) error { return e.Mkdir(path) }) == nil {
				dirs = append(dirs, path)
			}
		case r < 35: // touch
			path := join(pick(dirs), fmt.Sprintf("f%d", i))
			if both("touch "+path, func(e *enclave.Enclave) error { return e.Touch(path) }) == nil {
				files = append(files, path)
			}
		case r < 55: // write
			if len(files) == 0 {
				continue
			}
			path := pick(files)
			data := make([]byte, rng.Intn(512))
			rng.Read(data)
			both("write "+path, func(e *enclave.Enclave) error { return e.WriteFile(path, data) })
		case r < 70: // read
			if len(files) == 0 {
				continue
			}
			path := pick(files)
			both("read "+path, func(e *enclave.Enclave) error {
				_, err := e.ReadFile(path)
				return err
			})
		case r < 80: // filldir
			path := pick(dirs)
			both("filldir "+path, func(e *enclave.Enclave) error {
				_, err := e.Filldir(path)
				return err
			})
		case r < 88: // remove
			if len(files) == 0 {
				continue
			}
			j := rng.Intn(len(files))
			path := files[j]
			if both("remove "+path, func(e *enclave.Enclave) error { return e.Remove(path) }) == nil {
				files = append(files[:j], files[j+1:]...)
			}
		case r < 93: // drop caches
			mc.encl.DropCaches()
			fc.encl.DropCaches()
		case r < 96: // snapshot (attack staging)
			snapM, snapF = mc.raw.snapshot(), fc.raw.snapshot()
			haveSnap = true
		default: // stale-replay attack: serve the old snapshot, read, heal
			if !haveSnap {
				continue
			}
			serveStale := func(snap storeSnapshot) func(string, []byte, uint64) ([]byte, uint64) {
				return func(name string, b []byte, v uint64) ([]byte, uint64) {
					if old, ok := snap.data[name]; ok && !excluded[name] {
						return append([]byte(nil), old...), snap.vers[name]
					}
					return b, v
				}
			}
			mc.raw.setOnGet(serveStale(snapM))
			fc.raw.setOnGet(serveStale(snapF))
			mc.encl.DropCaches()
			fc.encl.DropCaches()
			for _, d := range dirs {
				err := both("attacked filldir "+d, func(e *enclave.Enclave) error {
					_, err := e.Filldir(d)
					return err
				})
				if err != nil && !errors.Is(err, enclave.ErrStaleMetadata) {
					t.Fatalf("seed %d: attacked filldir %s rejected with %v, want ErrStaleMetadata", seed, d, err)
				}
			}
			mc.raw.setOnGet(nil)
			fc.raw.setOnGet(nil)
			mc.encl.DropCaches()
			fc.encl.DropCaches()
		}
	}

	// Final sweep: both stacks agree on the whole namespace, through a
	// fresh mount each (sealed state only).
	eM := mc.newEnclave(t, mc.proofs)
	if err := mc.mount(eM); err != nil {
		t.Fatalf("seed %d: merkle remount: %v", seed, err)
	}
	containerF, err := fc.plat.CreateEnclave(rollbackImage)
	if err != nil {
		t.Fatal(err)
	}
	eF, err := enclave.New(enclave.Config{SGX: containerF, Store: fc.raw, IAS: fc.ias, FreshnessTree: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.mount(eF); err != nil {
		t.Fatalf("seed %d: flat remount: %v", seed, err)
	}
	for _, d := range dirs {
		entM, errM := eM.Filldir(d)
		entF, errF := eF.Filldir(d)
		if (errM == nil) != (errF == nil) {
			t.Fatalf("seed %d: final filldir %s: merkle=%v, flat=%v", seed, d, errM, errF)
		}
		if len(entM) != len(entF) {
			t.Fatalf("seed %d: final filldir %s: %d entries vs %d", seed, d, len(entM), len(entF))
		}
	}
}
