package enclave

import (
	"bytes"
	"errors"
	"testing"

	"nexus/internal/acl"
	"nexus/internal/sgx"
)

// exchangeScenario sets up Owen (volume owner) and Alice on separate
// platforms sharing one attestation service and one storage service.
type exchangeScenario struct {
	ias   *sgx.AttestationService
	store *memObjectStore

	owen, alice       identity
	owenEnv, aliceEnv *testEnv
	sealed            []byte
}

func newExchangeScenario(t *testing.T) *exchangeScenario {
	t.Helper()
	ias, err := sgx.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	store := newMemObjectStore()
	s := &exchangeScenario{
		ias:   ias,
		store: store,
		owen:  newIdentity(t, "owen"),
		alice: newIdentity(t, "alice"),
	}
	s.owenEnv = newTestEnv(t, ias, store)
	s.aliceEnv = newTestEnv(t, ias, store)

	sealed, err := s.owenEnv.enclave.CreateVolume("owen", s.owen.pub)
	if err != nil {
		t.Fatal(err)
	}
	s.sealed = sealed
	volID, err := s.owenEnv.enclave.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, s.owenEnv.enclave, s.owen, sealed, volID); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRootkeyExchangeEndToEnd(t *testing.T) {
	s := newExchangeScenario(t)

	// Setup: Alice's enclave publishes its attested ECDH key (m1),
	// in-band on the shared store.
	offer, err := s.aliceEnv.enclave.CreateExchangeOffer("alice", s.alice.signer())
	if err != nil {
		t.Fatalf("CreateExchangeOffer: %v", err)
	}
	if _, err := s.store.PutVersioned("xchg-offer-alice", offer); err != nil {
		t.Fatal(err)
	}

	// Exchange: Owen validates and grants (m2), also in-band.
	offerBytes, _, err := s.store.GetVersioned("xchg-offer-alice")
	if err != nil {
		t.Fatal(err)
	}
	grant, err := s.owenEnv.enclave.GrantAccess(offerBytes, "alice", s.alice.pub, s.owen.signer())
	if err != nil {
		t.Fatalf("GrantAccess: %v", err)
	}
	if _, err := s.store.PutVersioned("xchg-grant-alice", grant); err != nil {
		t.Fatal(err)
	}

	// The grant must not leak the rootkey: it is ECDH-encrypted.
	// (We cannot see the rootkey directly; check the grant differs from
	// the sealed blob and contains no long zero runs etc. — minimally,
	// decode succeeds and ciphertext is non-trivial.)
	g, err := DecodeGrant(grant)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Ciphertext) < 32 {
		t.Fatal("grant ciphertext too short to hold a wrapped rootkey")
	}

	// Extraction: Alice recovers and seals the rootkey in her enclave.
	grantBytes, _, err := s.store.GetVersioned("xchg-grant-alice")
	if err != nil {
		t.Fatal(err)
	}
	sealedForAlice, volID, err := s.aliceEnv.enclave.AcceptGrant(grantBytes, s.owen.pub)
	if err != nil {
		t.Fatalf("AcceptGrant: %v", err)
	}
	if bytes.Equal(sealedForAlice, s.sealed) {
		t.Fatal("alice's sealed rootkey equals owen's (not platform-bound)")
	}

	// Alice mounts the shared volume on her machine and uses it.
	if err := authenticate(t, s.aliceEnv.enclave, s.alice, sealedForAlice, volID); err != nil {
		t.Fatalf("alice mount: %v", err)
	}
	// Owen wrote a file; alice needs ACL grants to read it.
	if err := s.owenEnv.enclave.Touch("/readme"); err != nil {
		t.Fatal(err)
	}
	if err := s.owenEnv.enclave.WriteFile("/readme", []byte("hello alice")); err != nil {
		t.Fatal(err)
	}
	if err := s.owenEnv.enclave.SetACL("/", "alice", // root read grant
		mustRights(t, "lr")); err != nil {
		t.Fatal(err)
	}
	got, err := s.aliceEnv.enclave.ReadFile("/readme")
	if err != nil {
		t.Fatalf("alice read: %v", err)
	}
	if string(got) != "hello alice" {
		t.Fatalf("alice read = %q", got)
	}
}

func TestGrantRequiresOwner(t *testing.T) {
	s := newExchangeScenario(t)
	bob := newIdentity(t, "bob")
	if _, err := s.owenEnv.enclave.AddUser("bob", bob.pub); err != nil {
		t.Fatal(err)
	}
	volID, err := s.owenEnv.enclave.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, s.owenEnv.enclave, bob, s.sealed, volID); err != nil {
		t.Fatal(err)
	}

	offer, err := s.aliceEnv.enclave.CreateExchangeOffer("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.owenEnv.enclave.GrantAccess(offer, "alice", s.alice.pub, bob.signer()); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("non-owner grant = %v, want ErrAccessDenied", err)
	}
}

func TestGrantRejectsForgedOffer(t *testing.T) {
	s := newExchangeScenario(t)
	mallory := newIdentity(t, "mallory")

	// Offer signed by mallory but presented as alice's.
	offer, err := s.aliceEnv.enclave.CreateExchangeOffer("alice", mallory.signer())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.owenEnv.enclave.GrantAccess(offer, "alice", s.alice.pub, s.owen.signer()); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("forged offer = %v, want ErrExchangeInvalid", err)
	}
}

func TestGrantRejectsNonNexusEnclave(t *testing.T) {
	s := newExchangeScenario(t)

	// A genuine platform running a DIFFERENT enclave (e.g. malware that
	// would exfiltrate the rootkey) produces a valid quote with the
	// wrong measurement.
	roguePlatform, err := sgx.NewPlatform(sgx.PlatformConfig{}, s.ias)
	if err != nil {
		t.Fatal(err)
	}
	rogueContainer, err := roguePlatform.CreateEnclave(sgx.Image{
		Name: "rogue", Version: 1, Code: []byte("malicious code"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rogueStore := newMemObjectStore()
	rogue, err := New(Config{SGX: rogueContainer, Store: rogueStore, IAS: s.ias})
	if err != nil {
		t.Fatal(err)
	}
	offer, err := rogue.CreateExchangeOffer("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.owenEnv.enclave.GrantAccess(offer, "alice", s.alice.pub, s.owen.signer()); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("rogue-enclave offer = %v, want ErrExchangeInvalid", err)
	}
}

func TestGrantRejectsTamperedOffer(t *testing.T) {
	s := newExchangeScenario(t)
	offer, err := s.aliceEnv.enclave.CreateExchangeOffer("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeOffer(offer)
	if err != nil {
		t.Fatal(err)
	}
	// Substitute the ECDH key (attacker redirecting the grant to their
	// own key): the quote binding must catch it.
	other, err := s.owenEnv.enclave.CreateExchangeOffer("owen", s.owen.signer())
	if err != nil {
		t.Fatal(err)
	}
	otherDecoded, err := DecodeOffer(other)
	if err != nil {
		t.Fatal(err)
	}
	decoded.EnclaveKey = otherDecoded.EnclaveKey
	decoded.UserSig = s.alice.sign(t, decoded.Quote.Encode())
	if _, err := s.owenEnv.enclave.GrantAccess(decoded.Encode(), "alice", s.alice.pub, s.owen.signer()); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("key-substituted offer = %v, want ErrExchangeInvalid", err)
	}
}

func TestAcceptGrantRejectsWrongEnclave(t *testing.T) {
	s := newExchangeScenario(t)

	offer, err := s.aliceEnv.enclave.CreateExchangeOffer("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	grant, err := s.owenEnv.enclave.GrantAccess(offer, "alice", s.alice.pub, s.owen.signer())
	if err != nil {
		t.Fatal(err)
	}
	// A third enclave (carol's) intercepts the grant: without alice's
	// enclave private key the ECDH secret differs and decryption fails.
	carolEnv := newTestEnv(t, s.ias, s.store)
	if _, _, err := carolEnv.enclave.AcceptGrant(grant, s.owen.pub); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("grant accepted by wrong enclave: %v", err)
	}
}

func TestAcceptGrantRejectsForgedSignature(t *testing.T) {
	s := newExchangeScenario(t)
	offer, err := s.aliceEnv.enclave.CreateExchangeOffer("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	grant, err := s.owenEnv.enclave.GrantAccess(offer, "alice", s.alice.pub, s.owen.signer())
	if err != nil {
		t.Fatal(err)
	}
	// Alice checks the grant against the wrong owner key (a MITM server
	// substituting its own grant would fail exactly this check).
	mallory := newIdentity(t, "mallory")
	if _, _, err := s.aliceEnv.enclave.AcceptGrant(grant, mallory.pub); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("wrong owner key accepted: %v", err)
	}
	// Tampered ciphertext.
	g, err := DecodeGrant(grant)
	if err != nil {
		t.Fatal(err)
	}
	g.Ciphertext[0] ^= 1
	g.OwnerSig = s.owen.sign(t, g.signedPortion()) // re-sign to isolate the AEAD check
	if _, _, err := s.aliceEnv.enclave.AcceptGrant(g.Encode(), s.owen.pub); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("tampered ciphertext accepted: %v", err)
	}
}

func TestOfferGrantCodecRobustness(t *testing.T) {
	if _, err := DecodeOffer(nil); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("DecodeOffer(nil) = %v", err)
	}
	if _, err := DecodeOffer([]byte("garbage")); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("DecodeOffer(garbage) = %v", err)
	}
	if _, err := DecodeGrant([]byte{1, 2, 3}); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("DecodeGrant(garbage) = %v", err)
	}
}

func TestExchangeKeyPersistence(t *testing.T) {
	s := newExchangeScenario(t)

	// Alice publishes an offer, then "restarts": a new enclave instance
	// on the same platform restores the sealed exchange key.
	offer, err := s.aliceEnv.enclave.CreateExchangeOffer("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	sealedKey, err := s.aliceEnv.enclave.SealedExchangeKey()
	if err != nil {
		t.Fatalf("SealedExchangeKey: %v", err)
	}

	restarted, err := New(Config{SGX: s.aliceEnv.enclave.sgx, Store: s.store, IAS: s.ias})
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.RestoreExchangeKey(sealedKey); err != nil {
		t.Fatalf("RestoreExchangeKey: %v", err)
	}

	// Owen grants against the pre-restart offer; the restarted enclave
	// must be able to extract.
	grant, err := s.owenEnv.enclave.GrantAccess(offer, "alice", s.alice.pub, s.owen.signer())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := restarted.AcceptGrant(grant, s.owen.pub); err != nil {
		t.Fatalf("AcceptGrant after restart: %v", err)
	}

	// Without the restore, a fresh enclave's random key cannot extract.
	fresh, err := New(Config{SGX: s.aliceEnv.enclave.sgx, Store: s.store, IAS: s.ias})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fresh.AcceptGrant(grant, s.owen.pub); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("fresh enclave extracted without the key: %v", err)
	}

	// The sealed key is platform-bound.
	otherEnv := newTestEnv(t, s.ias, s.store)
	if err := otherEnv.enclave.RestoreExchangeKey(sealedKey); err == nil {
		t.Fatal("sealed exchange key restored on a different platform")
	}
}

// sign is a test helper producing an identity signature.
func (id identity) sign(t *testing.T, msg []byte) []byte {
	t.Helper()
	sig, err := id.signer()(msg)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func mustRights(t *testing.T, s string) acl.Rights {
	t.Helper()
	parsed, err := acl.ParseRights(s)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}
