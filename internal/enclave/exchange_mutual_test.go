package enclave

import (
	"errors"
	"testing"

	"nexus/internal/sgx"
)

func TestMutualExchangeEndToEnd(t *testing.T) {
	s := newExchangeScenario(t)

	// m1': Alice publishes an attested *ephemeral* key.
	offer, err := s.aliceEnv.enclave.BeginMutualExchange("alice", s.alice.signer())
	if err != nil {
		t.Fatalf("BeginMutualExchange: %v", err)
	}
	// m2': Owen mutually attests and grants.
	grant, err := s.owenEnv.enclave.GrantAccessMutual(offer, "alice", s.alice.pub, s.owen.signer())
	if err != nil {
		t.Fatalf("GrantAccessMutual: %v", err)
	}
	// Extraction, consuming Alice's ephemeral key.
	sealed, volID, err := s.aliceEnv.enclave.AcceptMutualGrant(grant, s.owen.pub)
	if err != nil {
		t.Fatalf("AcceptMutualGrant: %v", err)
	}

	if err := authenticate(t, s.aliceEnv.enclave, s.alice, sealed, volID); err != nil {
		t.Fatalf("alice mount: %v", err)
	}
	if err := s.owenEnv.enclave.SetACL("/", "alice", mustRights(t, "lr")); err != nil {
		t.Fatal(err)
	}
	if err := s.owenEnv.enclave.Touch("/hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.aliceEnv.enclave.ReadFile("/hello"); err != nil {
		t.Fatalf("alice read after mutual exchange: %v", err)
	}
}

func TestMutualExchangeForwardSecrecy(t *testing.T) {
	s := newExchangeScenario(t)
	offer, err := s.aliceEnv.enclave.BeginMutualExchange("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	grant, err := s.owenEnv.enclave.GrantAccessMutual(offer, "alice", s.alice.pub, s.owen.signer())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.aliceEnv.enclave.AcceptMutualGrant(grant, s.owen.pub); err != nil {
		t.Fatal(err)
	}
	// The ephemeral key was consumed: a recorded grant is worthless, even
	// to the very same enclave that owns every long-term key.
	if _, _, err := s.aliceEnv.enclave.AcceptMutualGrant(grant, s.owen.pub); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("replayed mutual grant = %v, want ErrExchangeInvalid", err)
	}
}

func TestMutualExchangeRequiresPendingKey(t *testing.T) {
	s := newExchangeScenario(t)
	offer, err := s.aliceEnv.enclave.BeginMutualExchange("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	grant, err := s.owenEnv.enclave.GrantAccessMutual(offer, "alice", s.alice.pub, s.owen.signer())
	if err != nil {
		t.Fatal(err)
	}
	// A different enclave — same code, same IAS, no pending ephemeral —
	// cannot extract.
	carolEnv := newTestEnv(t, s.ias, s.store)
	if _, _, err := carolEnv.enclave.AcceptMutualGrant(grant, s.owen.pub); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("grant accepted without pending key: %v", err)
	}
}

func TestMutualExchangeRejectsUnattestedOwner(t *testing.T) {
	s := newExchangeScenario(t)
	offer, err := s.aliceEnv.enclave.BeginMutualExchange("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	grant, err := s.owenEnv.enclave.GrantAccessMutual(offer, "alice", s.alice.pub, s.owen.signer())
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the owner quote's measurement: mutual attestation on
	// the recipient side must reject it (after re-signing, to isolate
	// the attestation check from the signature check).
	g, err := DecodeMutualGrant(grant)
	if err != nil {
		t.Fatal(err)
	}
	g.OwnerQuote.Measurement[0] ^= 1
	g.OwnerSig = s.owen.sign(t, g.signedPortion())
	if _, _, err := s.aliceEnv.enclave.AcceptMutualGrant(g.Encode(), s.owen.pub); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("tampered owner quote accepted: %v", err)
	}
}

func TestMutualGrantRejectsRogueRecipient(t *testing.T) {
	s := newExchangeScenario(t)
	// A rogue enclave (different measurement) makes a mutual offer.
	roguePlatform, err := sgx.NewPlatform(sgx.PlatformConfig{}, s.ias)
	if err != nil {
		t.Fatal(err)
	}
	rogueContainer, err := roguePlatform.CreateEnclave(sgx.Image{Name: "rogue", Version: 1, Code: []byte("evil")})
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := New(Config{SGX: rogueContainer, Store: newMemObjectStore(), IAS: s.ias})
	if err != nil {
		t.Fatal(err)
	}
	offer, err := rogue.BeginMutualExchange("alice", s.alice.signer())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.owenEnv.enclave.GrantAccessMutual(offer, "alice", s.alice.pub, s.owen.signer()); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("rogue mutual offer accepted: %v", err)
	}
}

func TestMutualGrantCodecRobustness(t *testing.T) {
	if _, err := DecodeMutualGrant(nil); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("DecodeMutualGrant(nil) = %v", err)
	}
	if _, err := DecodeMutualGrant([]byte("garbage")); !errors.Is(err, ErrExchangeInvalid) {
		t.Fatalf("DecodeMutualGrant(garbage) = %v", err)
	}
}
