package enclave

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"nexus/internal/metadata"
	"nexus/internal/serial"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
)

// The rootkey exchange protocol of DSN'19 §IV-B1 (Fig. 4): an
// asynchronous, in-band ECDH exchange in which the recipient's enclave is
// remotely attested before the volume rootkey is released to it.
//
//	Setup:      recipient's enclave publishes m1 = SIGN(sk_user, Q) ‖ pk_e,
//	            where Q = QUOTE(pk_e) binds the enclave ECDH public key to
//	            a genuine NEXUS enclave.
//	Exchange:   the owner verifies the quote (via the attestation
//	            service), derives k = ECDH(sk_eph, pk_e), and publishes
//	            m2 = SIGN(sk_owner, ENC(k, rootkey)) ‖ pk_eph.
//	Extraction: the recipient derives k' = ECDH(sk_e, pk_eph) inside the
//	            enclave and recovers the rootkey, which it immediately
//	            seals to local disk.
//
// Both messages are plain objects on the shared storage service, so
// neither party needs to be online simultaneously.

// Exchange errors.
var (
	// ErrExchangeInvalid reports a malformed or unverifiable exchange
	// message.
	ErrExchangeInvalid = errors.New("enclave: exchange message failed verification")
	// ErrNoAttestation reports an exchange attempted without an
	// attestation service configured.
	ErrNoAttestation = errors.New("enclave: no attestation service configured")
)

// Signer produces the user's identity signature over a message. The
// user's private key lives outside the enclave (it is the same key used
// for volume authentication), so signing is a callback to the caller.
type Signer func(message []byte) ([]byte, error)

// exchangeKey is the enclave's long-term ECDH keypair (Fig. 4 "Setup").
// The private key never leaves enclave state.
type exchangeKey struct {
	priv *ecdh.PrivateKey
}

func newExchangeKey() (*exchangeKey, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generating ECDH keypair: %w", err)
	}
	return &exchangeKey{priv: priv}, nil
}

// Offer is m1: the recipient enclave's attested ECDH public key, signed
// by the requesting user's identity key.
type Offer struct {
	// UserName is the requesting user's name (informational; the binding
	// identity is UserSig's key).
	UserName string
	// EnclaveKey is the recipient enclave's ECDH public key (P-256,
	// uncompressed point).
	EnclaveKey []byte
	// Quote binds SHA-256(EnclaveKey) to a genuine enclave.
	Quote *sgx.Quote
	// UserSig is the user's Ed25519 signature over the encoded quote.
	UserSig []byte
}

// Encode serializes the offer for in-band transport.
func (o *Offer) Encode() []byte {
	quoteBytes := o.Quote.Encode()
	w := serial.NewWriter(128 + len(quoteBytes) + len(o.EnclaveKey) + len(o.UserSig))
	w.WriteString(o.UserName)
	w.WriteBytes(o.EnclaveKey)
	w.WriteBytes(quoteBytes)
	w.WriteBytes(o.UserSig)
	return w.Bytes()
}

// DecodeOffer parses an offer.
func DecodeOffer(b []byte) (*Offer, error) {
	r := serial.NewReader(b)
	o := &Offer{}
	o.UserName = r.ReadString(256, "offer user name")
	o.EnclaveKey = r.ReadBytes(256, "offer enclave key")
	quoteBytes := r.ReadBytes(2048, "offer quote")
	o.UserSig = r.ReadBytes(256, "offer user signature")
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeInvalid, err)
	}
	q, err := sgx.DecodeQuote(quoteBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeInvalid, err)
	}
	o.Quote = q
	return o, nil
}

// Grant is m2: the rootkey encrypted to the recipient's enclave key,
// signed by the volume owner.
type Grant struct {
	// VolumeUUID identifies the shared volume (used as sealing AAD by
	// the recipient).
	VolumeUUID uuid.UUID
	// EphemeralKey is the owner's ephemeral ECDH public key; its private
	// half was discarded after the exchange.
	EphemeralKey []byte
	// Nonce and Ciphertext carry AES-256-GCM(k, rootkey).
	Nonce      []byte
	Ciphertext []byte
	// OwnerSig is the owner's Ed25519 signature over the fields above.
	OwnerSig []byte
}

func (g *Grant) signedPortion() []byte {
	w := serial.NewWriter(128 + len(g.EphemeralKey) + len(g.Ciphertext))
	w.WriteRaw(g.VolumeUUID[:])
	w.WriteBytes(g.EphemeralKey)
	w.WriteBytes(g.Nonce)
	w.WriteBytes(g.Ciphertext)
	return w.Bytes()
}

// Encode serializes the grant for in-band transport.
func (g *Grant) Encode() []byte {
	body := g.signedPortion()
	w := serial.NewWriter(len(body) + len(g.OwnerSig) + 8)
	w.WriteBytes(body)
	w.WriteBytes(g.OwnerSig)
	return w.Bytes()
}

// DecodeGrant parses a grant.
func DecodeGrant(b []byte) (*Grant, error) {
	r := serial.NewReader(b)
	body := r.ReadBytes(4096, "grant body")
	sig := r.ReadBytes(256, "grant owner signature")
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeInvalid, err)
	}
	br := serial.NewReader(body)
	g := &Grant{OwnerSig: sig}
	br.ReadRawInto(g.VolumeUUID[:], "grant volume uuid")
	g.EphemeralKey = br.ReadBytes(256, "grant ephemeral key")
	g.Nonce = br.ReadBytes(64, "grant nonce")
	g.Ciphertext = br.ReadBytes(256, "grant ciphertext")
	if err := br.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeInvalid, err)
	}
	return g, nil
}

// exchangeKeySealLabel is the AAD binding sealed exchange keys.
var exchangeKeySealLabel = []byte("nexus-exchange-key")

// SealedExchangeKey exports the enclave's long-term exchange private key
// in SGX-sealed form for local persistence, as the paper prescribes
// ("encrypted with the enclave sealing key before being stored
// persistently", §IV-B1). Only an enclave with the same measurement on
// the same platform can restore it.
func (e *Enclave) SealedExchangeKey() ([]byte, error) {
	var out []byte
	err := e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		var err error
		out, err = e.sgx.Seal(e.exchange.priv.Bytes(), exchangeKeySealLabel)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("sealing exchange key: %w", err)
	}
	return out, nil
}

// RestoreExchangeKey replaces the enclave's exchange keypair with one
// previously exported by SealedExchangeKey, so offers published before a
// restart remain redeemable.
func (e *Enclave) RestoreExchangeKey(sealed []byte) error {
	return e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		raw, err := e.sgx.Unseal(sealed, exchangeKeySealLabel)
		if err != nil {
			return fmt.Errorf("unsealing exchange key: %w", err)
		}
		priv, err := ecdh.P256().NewPrivateKey(raw)
		if err != nil {
			return fmt.Errorf("restoring exchange key: %w", err)
		}
		e.exchange = &exchangeKey{priv: priv}
		return nil
	})
}

// CreateExchangeOffer produces m1 for this enclave: a quote over the
// enclave's ECDH public key, signed by the requesting user's identity
// key. The caller publishes the returned bytes on the shared store.
func (e *Enclave) CreateExchangeOffer(userName string, sign Signer) ([]byte, error) {
	var out []byte
	err := e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		pub := e.exchange.priv.PublicKey().Bytes()
		quote, err := e.sgx.Quote(keyDigest(pub))
		if err != nil {
			return fmt.Errorf("quoting exchange key: %w", err)
		}
		sig, err := sign(quote.Encode())
		if err != nil {
			return fmt.Errorf("signing offer: %w", err)
		}
		out = (&Offer{
			UserName:   userName,
			EnclaveKey: pub,
			Quote:      quote,
			UserSig:    sig,
		}).Encode()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GrantAccess is the owner-side "Exchange" phase: it validates the
// offer's user signature and enclave quote, adds the user to the volume
// (one supernode update), encrypts the rootkey to the offered enclave
// key under an ephemeral ECDH secret, and returns the signed grant (m2)
// for the caller to publish. Only the authenticated owner may grant.
func (e *Enclave) GrantAccess(offerBytes []byte, userName string, userKey ed25519.PublicKey, sign Signer) ([]byte, error) {
	var out []byte
	err := e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		if !e.isOwnerLocked() {
			return fmt.Errorf("%w: only the owner may grant volume access", ErrAccessDenied)
		}
		// Sharing hands another enclave a view of the volume: make that
		// view complete by draining pending write-back metadata first.
		if err := e.drainWithRetryLocked(); err != nil {
			return err
		}
		offer, err := DecodeOffer(offerBytes)
		if err != nil {
			return err
		}

		// The offer must be signed by the identity we are granting to.
		if !ed25519.Verify(userKey, offer.Quote.Encode(), offer.UserSig) {
			return fmt.Errorf("%w: offer not signed by %s's key", ErrExchangeInvalid, userName)
		}
		// The quote must come from a genuine platform, attest *our own*
		// enclave identity (another NEXUS enclave, not arbitrary code),
		// and bind the offered ECDH key.
		if e.ias == nil {
			return ErrNoAttestation
		}
		var report *sgx.VerificationReport
		if err := e.sgx.Ocall(func() error {
			var err error
			report, err = e.ias.VerifyQuote(offer.Quote)
			return err
		}); err != nil {
			return fmt.Errorf("%w: quote verification: %v", ErrExchangeInvalid, err)
		}
		if err := sgx.VerifyReport(e.ias.PublicKey(), report); err != nil {
			return fmt.Errorf("%w: attestation report: %v", ErrExchangeInvalid, err)
		}
		if report.Quote.Measurement != e.sgx.Measurement() {
			return fmt.Errorf("%w: offer from enclave %s, want %s (not a NEXUS enclave)",
				ErrExchangeInvalid, report.Quote.Measurement, e.sgx.Measurement())
		}
		if !bytes.Equal(report.Quote.ReportData[:sha256.Size], keyDigest(offer.EnclaveKey)) {
			return fmt.Errorf("%w: quote does not bind the offered ECDH key", ErrExchangeInvalid)
		}

		remoteKey, err := ecdh.P256().NewPublicKey(offer.EnclaveKey)
		if err != nil {
			return fmt.Errorf("%w: bad enclave key: %v", ErrExchangeInvalid, err)
		}

		// Admit the user (single metadata update, §VII-F).
		if err := e.withSupernodeLockLocked(func() error {
			if _, err := e.super.AddUser(userName, userKey); err != nil &&
				!errors.Is(err, metadata.ErrUserExists) {
				return err
			}
			return e.flushSupernodeLocked()
		}); err != nil {
			return err
		}

		// Ephemeral ECDH: the private half is dropped on return.
		eph, err := ecdh.P256().GenerateKey(rand.Reader)
		if err != nil {
			return fmt.Errorf("generating ephemeral key: %w", err)
		}
		secret, err := eph.ECDH(remoteKey)
		if err != nil {
			return fmt.Errorf("deriving exchange secret: %w", err)
		}
		nonce := make([]byte, 12)
		if _, err := rand.Read(nonce); err != nil {
			return fmt.Errorf("generating grant nonce: %w", err)
		}
		gcm, err := exchangeCipher(secret)
		if err != nil {
			return err
		}
		g := &Grant{
			VolumeUUID:   e.super.VolumeUUID,
			EphemeralKey: eph.PublicKey().Bytes(),
			Nonce:        nonce,
			Ciphertext:   gcm.Seal(nil, nonce, e.rootKey, e.super.VolumeUUID[:]),
		}
		sig, err := sign(g.signedPortion())
		if err != nil {
			return fmt.Errorf("signing grant: %w", err)
		}
		g.OwnerSig = sig
		out = g.Encode()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AcceptGrant is the recipient-side "Extraction" phase: it verifies the
// owner's signature, derives the ECDH secret with the enclave's private
// key, recovers the rootkey, and returns it SGX-sealed for local
// persistence along with the volume UUID to mount with.
func (e *Enclave) AcceptGrant(grantBytes []byte, ownerKey ed25519.PublicKey) (sealedRootKey []byte, volumeID uuid.UUID, err error) {
	err = e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		g, err := DecodeGrant(grantBytes)
		if err != nil {
			return err
		}
		if !ed25519.Verify(ownerKey, g.signedPortion(), g.OwnerSig) {
			return fmt.Errorf("%w: grant not signed by the volume owner", ErrExchangeInvalid)
		}
		ephKey, err := ecdh.P256().NewPublicKey(g.EphemeralKey)
		if err != nil {
			return fmt.Errorf("%w: bad ephemeral key: %v", ErrExchangeInvalid, err)
		}
		secret, err := e.exchange.priv.ECDH(ephKey)
		if err != nil {
			return fmt.Errorf("deriving exchange secret: %w", err)
		}
		gcm, err := exchangeCipher(secret)
		if err != nil {
			return err
		}
		rootKey, err := gcm.Open(nil, g.Nonce, g.Ciphertext, g.VolumeUUID[:])
		if err != nil {
			return fmt.Errorf("%w: rootkey decryption failed (grant not for this enclave?)", ErrExchangeInvalid)
		}
		if len(rootKey) != metadata.RootKeySize {
			return fmt.Errorf("%w: recovered key has wrong size", ErrExchangeInvalid)
		}
		sealedRootKey, err = e.sgx.Seal(rootKey, g.VolumeUUID[:])
		if err != nil {
			return fmt.Errorf("sealing received rootkey: %w", err)
		}
		volumeID = g.VolumeUUID
		return nil
	})
	if err != nil {
		return nil, uuid.Nil, err
	}
	return sealedRootKey, volumeID, nil
}

// keyDigest derives the 32-byte report data binding an ECDH public key
// into a quote.
func keyDigest(pub []byte) []byte {
	d := sha256.Sum256(pub)
	return d[:]
}

// exchangeCipher builds the AEAD used to protect the rootkey in transit:
// AES-256-GCM keyed with SHA-256 of the ECDH shared secret.
func exchangeCipher(secret []byte) (cipher.AEAD, error) {
	kek := sha256.Sum256(secret)
	block, err := aes.NewCipher(kek[:])
	if err != nil {
		return nil, fmt.Errorf("exchange cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("exchange GCM: %w", err)
	}
	return gcm, nil
}
