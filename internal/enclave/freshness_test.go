package enclave

import (
	"bytes"
	"errors"
	"testing"

	"nexus/internal/sgx"
)

// newFreshnessEnv builds a mounted volume with the freshness tree on.
func newFreshnessEnv(t *testing.T) (*testEnv, *Enclave, identity) {
	t.Helper()
	env := newTestEnv(t, nil, nil)
	encl, err := New(Config{SGX: env.enclave.sgx, Store: env.store, IAS: env.ias, FreshnessTree: true})
	if err != nil {
		t.Fatal(err)
	}
	owner := newIdentity(t, "owen")
	sealed, err := encl.CreateVolume(owner.name, owner.pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := encl.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, encl, owner, sealed, volID); err != nil {
		t.Fatal(err)
	}
	return env, encl, owner
}

func TestFreshnessTreeNormalOperation(t *testing.T) {
	_, e, _ := newFreshnessEnv(t)
	if err := e.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/d/f", []byte("data")); err == nil {
		t.Fatal("WriteFile on missing file succeeded")
	}
	if err := e.Touch("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/d/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadFile("/d/f")
	if err != nil || string(got) != "data" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := e.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("/d"); err != nil {
		t.Fatal(err)
	}
}

// TestFreshnessTreeCatchesWholeSnapshotRollback exercises the attack the
// per-object counters cannot see: the server restores a full consistent
// snapshot, and a *fresh* enclave (no local version memory for the
// rolled-back dirnode) mounts afterwards.
func TestFreshnessTreeCatchesWholeSnapshotRollback(t *testing.T) {
	env, e, owner := newFreshnessEnv(t)

	if err := e.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/docs/old"); err != nil {
		t.Fatal(err)
	}
	// Snapshot everything except the freshness table (the attacker
	// cannot forge the table because it is sealed under the rootkey, and
	// rolling it back too is caught by the next writer's seq check; here
	// the attacker rolls back only the data).
	snapshot := make(map[string][]byte)
	names, err := env.store.mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == FreshnessObjectName {
			continue
		}
		b, _, err := env.store.GetVersioned(n)
		if err != nil {
			t.Fatal(err)
		}
		snapshot[n] = b
	}

	if err := e.Touch("/docs/new"); err != nil {
		t.Fatal(err)
	}

	// Server restores the old snapshot.
	for n, b := range snapshot {
		cur, _, err := env.store.GetVersioned(n)
		if err == nil && bytes.Equal(cur, b) {
			continue
		}
		if _, err := env.store.PutVersioned(n, b); err != nil {
			t.Fatal(err)
		}
	}

	// A brand-new enclave instance (fresh platform state is fine — the
	// table is on the store) mounts and must detect the rollback.
	encl2, err := New(Config{SGX: e.sgx, Store: env.store, IAS: env.ias, FreshnessTree: true})
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the original enclave's sealed rootkey: seal is bound to the
	// platform+measurement, and encl2 shares both.
	sealed2, err := e.sgx.Seal(e.rootKey, e.super.VolumeUUID[:])
	if err != nil {
		t.Fatal(err)
	}
	volID := e.super.VolumeUUID
	if err := authenticate(t, encl2, owner, sealed2, volID); err != nil {
		t.Fatalf("mount after rollback: %v", err)
	}
	_, err = encl2.Filldir("/docs")
	if !errors.Is(err, ErrStaleMetadata) {
		t.Fatalf("snapshot rollback = %v, want ErrStaleMetadata", err)
	}
}

// TestPerObjectCountersMissSnapshotRollback documents why the tree
// matters: without it, a fresh enclave accepts the stale snapshot.
func TestPerObjectCountersMissSnapshotRollback(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	if err := e.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	snapshot := make(map[string][]byte)
	names, err := env.store.mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		b, _, err := env.store.GetVersioned(n)
		if err != nil {
			t.Fatal(err)
		}
		snapshot[n] = b
	}
	if err := e.Touch("/docs/new"); err != nil {
		t.Fatal(err)
	}
	for n, b := range snapshot {
		if _, err := env.store.PutVersioned(n, b); err != nil {
			t.Fatal(err)
		}
	}

	// Fresh enclave with NO freshness tree: the stale state verifies.
	encl2, err := New(Config{SGX: e.sgx, Store: env.store, IAS: env.ias})
	if err != nil {
		t.Fatal(err)
	}
	sealed2, err := e.sgx.Seal(e.rootKey, e.super.VolumeUUID[:])
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, encl2, owner, sealed2, e.super.VolumeUUID); err != nil {
		t.Fatal(err)
	}
	entries, err := encl2.Filldir("/docs")
	if err != nil {
		t.Fatalf("per-object mode rejected consistent snapshot: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("stale snapshot shows %d entries (expected the old empty dir)", len(entries))
	}
}

func TestFreshnessTableTamperRejected(t *testing.T) {
	env, e, _ := newFreshnessEnv(t)
	if err := e.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	blob, _, err := env.store.GetVersioned(FreshnessObjectName)
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(blob)
	mut[len(mut)-1] ^= 1
	if _, err := env.store.PutVersioned(FreshnessObjectName, mut); err != nil {
		t.Fatal(err)
	}
	if err := e.Mkdir("/d2"); err == nil {
		t.Fatal("tampered freshness table accepted")
	}
}

func TestFreshnessTreeCostsOneExtraObject(t *testing.T) {
	_, e, _ := newFreshnessEnv(t)
	e.ResetStats()
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// Touch writes: filenode, bucket, dirnode, freshness (x2: filenode
	// flush and dirnode flush both record).
	if st.MetadataFlushes < 4 {
		t.Fatalf("flushes = %d; expected freshness-table writes on top of metadata", st.MetadataFlushes)
	}
}

// Ensure the sgx image used by freshness envs matches the shared one (a
// compile-time usage of the import).
var _ = sgx.Image{}
