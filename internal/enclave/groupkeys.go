package enclave

// Subgroup key tree wiring (DESIGN.md §13). The enclave maintains a
// groupkey.Tree over the volume membership inside the sealed supernode:
// AddUser enrolls the identity into the sparsest leaf subgroup,
// RemoveUser rotates the evicted user's leaf-to-root path (O(log n)
// wraps instead of the flat table's O(n)), and CompleteAuth verifies the
// member's wrap chain still reaches the current root. Dirnode ACLs may
// grant rights to whole leaf subgroups (acl.GroupIDFlag entries), which
// resolve through the tree at check time.
//
// Tree mutations ride the supernode flush: in eager mode
// markSupernodeDirtyLocked seals and uploads inline (under the caller's
// supernode store lock, as before); in write-back mode it flags the
// supernode dirty and the admin operation drains before releasing the
// lock, so the rotation flushes in the same batch as any deferred
// metadata — one flush_batch span, one freshness-table rewrite.

import (
	"errors"
	"fmt"

	"nexus/internal/acl"
	"nexus/internal/groupkey"
	"nexus/internal/metadata"
)

// ErrGroupKeysDisabled reports a group operation on an enclave running
// with Config.DisableGroupKeys, or against a legacy volume that has no
// key tree yet.
var ErrGroupKeysDisabled = errors.New("enclave: membership key tree not enabled for this volume")

// groupTreeLocked returns the mounted volume's key tree (nil when the
// knob is off or the volume predates the tree).
func (e *Enclave) groupTreeLocked() *groupkey.Tree {
	if e.super == nil || e.cfg.DisableGroupKeys {
		return nil
	}
	return e.super.GroupTree
}

// ensureGroupTreeLocked lazily creates the tree on first use, enrolling
// every existing identity (owner included) so volumes created before
// the tree — or users added while the knob was off — migrate in one
// O(n) pass.
func (e *Enclave) ensureGroupTreeLocked() (*groupkey.Tree, error) {
	if e.cfg.DisableGroupKeys {
		return nil, ErrGroupKeysDisabled
	}
	if e.super.GroupTree != nil {
		return e.super.GroupTree, nil
	}
	tree := groupkey.NewTree(groupkey.Config{})
	if _, err := tree.Add(e.super.Owner.ID); err != nil {
		return nil, fmt.Errorf("enclave: enrolling owner in key tree: %w", err)
	}
	for _, u := range e.super.Users {
		if _, err := tree.Add(u.ID); err != nil {
			return nil, fmt.Errorf("enclave: enrolling user %q in key tree: %w", u.Name, err)
		}
	}
	e.super.GroupTree = tree
	return tree, nil
}

// groupAddLocked enrolls a just-added user into the key tree and meters
// the wrap work. No-op when the knob is off.
func (e *Enclave) groupAddLocked(userID uint32) error {
	if e.cfg.DisableGroupKeys {
		return nil
	}
	tree, err := e.ensureGroupTreeLocked()
	if err != nil {
		return err
	}
	before := tree.Stats()
	if !tree.Contains(userID) {
		if _, err := tree.Add(userID); err != nil {
			return fmt.Errorf("enclave: enrolling user in key tree: %w", err)
		}
	}
	e.recordGroupStatsLocked(tree, before)
	return nil
}

// groupRevokeLocked rotates the evicted user's path keys. Users the
// tree never saw (legacy volumes, knob toggles) revoke as a no-op.
func (e *Enclave) groupRevokeLocked(userID uint32) error {
	tree := e.groupTreeLocked()
	if tree == nil || !tree.Contains(userID) {
		return nil
	}
	before := tree.Stats()
	if err := tree.Revoke(userID); err != nil {
		return fmt.Errorf("enclave: revoking user from key tree: %w", err)
	}
	e.recordGroupStatsLocked(tree, before)
	return nil
}

// groupAuthenticateLocked verifies the authenticating member's wrap
// chain reaches the current root (the §IV-B challenge–response gains a
// tree-membership proof). Identities outside the tree — legacy volumes,
// knob off — pass, preserving mountability of old volumes.
func (e *Enclave) groupAuthenticateLocked(userID uint32) error {
	tree := e.groupTreeLocked()
	if tree == nil || !tree.Contains(userID) {
		return nil
	}
	before := tree.Stats()
	if err := tree.Authenticate(userID); err != nil {
		return fmt.Errorf("%w: key-tree path stale for user %d", ErrBadAuth, userID)
	}
	e.recordGroupStatsLocked(tree, before)
	return nil
}

// recordGroupStatsLocked folds a tree-stats delta into the registry
// counters (enclave_groupkey_wraps_total etc.).
func (e *Enclave) recordGroupStatsLocked(tree *groupkey.Tree, before groupkey.Stats) {
	after := tree.Stats()
	if d := after.Wraps - before.Wraps; d > 0 {
		e.metrics.groupWraps.Add(d)
	}
	if d := after.WrapBytes - before.WrapBytes; d > 0 {
		e.metrics.groupWrapBytes.Add(d)
	}
	if d := after.Unwraps - before.Unwraps; d > 0 {
		e.metrics.groupUnwraps.Add(d)
	}
}

// markSupernodeDirtyLocked persists a supernode mutation (user table or
// key tree). Eager mode flushes inline — the caller holds the supernode
// store lock. Write-back mode flags the supernode for the next drain;
// admin operations drain before releasing the lock, so the flush still
// happens under it, batched with any deferred metadata.
func (e *Enclave) markSupernodeDirtyLocked() error {
	if e.wb == nil {
		return e.flushSupernodeLocked()
	}
	e.wb.superDirty = true
	e.wb.ops++
	e.metrics.metadataDirty.Inc()
	return nil
}

// UserGroup returns the stable leaf subgroup ID the named user belongs
// to, for granting ACL rights to that subgroup via SetGroupACL.
func (e *Enclave) UserGroup(userName string) (leaf uint32, err error) {
	err = e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		tree := e.groupTreeLocked()
		if tree == nil {
			return ErrGroupKeysDisabled
		}
		u, err := e.super.FindUserByName(userName)
		if err != nil {
			return err
		}
		lf, ok := tree.LeafOf(u.ID)
		if !ok {
			return fmt.Errorf("%w: user %q not enrolled in the key tree", metadata.ErrUserNotFound, userName)
		}
		leaf = lf
		return nil
	})
	if err != nil {
		return 0, err
	}
	return leaf, nil
}

// SetGroupACL grants (or with acl.None revokes) rights on a directory
// to an entire leaf subgroup of the membership key tree. Rights resolve
// at check time through the tree, so subgroup churn needs no ACL
// rewrite. Authorization mirrors SetACL: owner or Administer.
func (e *Enclave) SetGroupACL(dirPath string, leaf uint32, rights acl.Rights) error {
	return e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		tree := e.groupTreeLocked()
		if tree == nil {
			return ErrGroupKeysDisabled
		}
		if int(leaf) >= tree.Leaves() {
			return fmt.Errorf("enclave: no leaf subgroup %d (tree has %d)", leaf, tree.Leaves())
		}
		if err := e.drainWithRetryLocked(); err != nil {
			return err
		}
		dirs, base, err := splitPath(dirPath)
		if err != nil {
			return err
		}
		if base != "" {
			dirs = append(dirs, base)
		}
		w, err := e.walkDirLocked(dirs)
		if err != nil {
			return err
		}
		if !e.isOwnerLocked() {
			if err := e.checkACLLocked(w.dir, acl.Administer); err != nil {
				return err
			}
		}
		release, err := e.lockObject(objName(w.dir.UUID))
		if err != nil {
			return fmt.Errorf("locking directory: %w", err)
		}
		defer release()
		w, err = e.reloadDirUnderLockLocked(dirs)
		if err != nil {
			return err
		}
		w.dir.ACL.Set(acl.GroupEntryID(leaf), rights)
		if err := e.flushDirnodeLocked(w.dir, w.version+1); err != nil {
			e.cache.invalidate(w.dir.UUID)
			return err
		}
		return nil
	})
}
