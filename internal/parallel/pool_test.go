package parallel

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

func TestArenaClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0},
		{1, 0},
		{4096, 0},
		{4097, 1},
		{8192, 1},
		{1 << 20, 8},
		{(1 << 20) + 1, 9},
		{128 << 20, numClasses - 1},
		{(128 << 20) + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Fatalf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestArenaReuseAndCounters(t *testing.T) {
	a := NewArena()
	var hooked atomic.Int64
	a.SetCounters(func() { hooked.Add(1) }, func() { hooked.Add(100) })

	b1 := a.Get(1000)
	if len(b1.B) != 1000 || cap(b1.B) != 4096 {
		t.Fatalf("lease: len=%d cap=%d, want 1000/4096", len(b1.B), cap(b1.B))
	}
	p1 := &b1.B[0]
	b1.Release()

	b2 := a.Get(2000)
	if len(b2.B) != 2000 {
		t.Fatalf("second lease len = %d", len(b2.B))
	}
	if &b2.B[0] != p1 {
		t.Fatal("same-class lease did not reuse the released buffer")
	}
	hits, misses := a.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if hooked.Load() != 101 {
		t.Fatalf("counter hooks saw %d, want 101 (1 hit + 1 miss)", hooked.Load())
	}
	b2.Release()
}

func TestArenaOversizedBypassesPool(t *testing.T) {
	a := NewArena()
	b := a.Get((128 << 20) + 1)
	if b.class != -1 {
		t.Fatalf("oversized lease got class %d", b.class)
	}
	b.Release() // must not panic, must not pool
	if hits, misses := a.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 0 hits / 1 miss", hits, misses)
	}
}

func TestArenaDoubleReleasePanics(t *testing.T) {
	a := NewArena()
	b := a.Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}

// TestArenaSensitiveLeaseLeavesNoPlaintext is the leak test from the
// pool-lifecycle checklist: poison a sensitive buffer with recognizable
// plaintext, release it, and assert the next leaseholder of the same
// class cannot read a single poisoned byte — to full capacity, not just
// the requested length.
func TestArenaSensitiveLeaseLeavesNoPlaintext(t *testing.T) {
	a := NewArena()
	poison := []byte("TOP-SECRET-CHUNK-PLAINTEXT-")

	b := a.GetSensitive(1 << 14)
	for i := 0; i < len(b.B); i++ {
		b.B[i] = poison[i%len(poison)]
	}
	// Shrink what the "caller" nominally holds; release must still wipe
	// the bytes beyond len, because Seal-style call sites slice down.
	b.B = b.B[:100]
	b.Release()

	n := a.Get(1 << 14)
	if bytes.Contains(n.B[:cap(n.B)], poison) {
		t.Fatal("released sensitive buffer still readable through next lease")
	}
	for i, c := range n.B {
		if c != 0 {
			t.Fatalf("byte %d = %q after sensitive release, want 0", i, c)
		}
	}
	n.Release()
}

// TestArenaConcurrentHammer drives concurrent get/release traffic across
// mixed classes with the chaos sizes overlapping, for the -race leg of
// the pool-lifecycle checklist. Every goroutine writes a unique pattern
// and verifies it before release, so a double-lease of live memory
// shows up as data corruption even without the race detector.
func TestArenaConcurrentHammer(t *testing.T) {
	a := NewArena()
	sizes := []int{100, 4096, 5000, 1 << 16, 1 << 20}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pat := byte(g + 1)
			for i := 0; i < 200; i++ {
				b := a.Get(sizes[(g+i)%len(sizes)])
				if (g+i)%3 == 0 {
					b.sensitive = true
				}
				for j := range b.B {
					b.B[j] = pat
				}
				for j := range b.B {
					if b.B[j] != pat {
						t.Errorf("goroutine %d iter %d: byte %d corrupted", g, i, j)
						break
					}
				}
				b.Release()
			}
		}(g)
	}
	wg.Wait()
	hits, misses := a.Stats()
	if hits+misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*200)
	}
}
