//go:build !race

package parallel

import (
	"runtime"
	"testing"
)

// TestRangesAllocBudget pins the fan-out's fixed cost: two heap objects
// per call (the rangeRun and the shared spawn closure) at every width,
// and zero on the inline serial path. A regression here multiplies
// straight into the chunk-crypto allocs/op gate.
func TestRangesAllocBudget(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	span := func(lo, hi int) error { return nil }
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Ranges(16, w, span); err != nil {
					b.Fatal(err)
				}
			}
		})
		budget := int64(2)
		if w == 1 {
			budget = 0
		}
		if got := res.AllocsPerOp(); got > budget {
			t.Errorf("Ranges w=%d: %d allocs/op, budget %d", w, got, budget)
		}
	}
}

// TestArenaGetReleaseAllocFree pins the pool hot path at zero
// steady-state allocations.
func TestArenaGetReleaseAllocFree(t *testing.T) {
	a := NewArena()
	a.Get(1 << 16).Release() // warm the class
	allocs := testing.AllocsPerRun(100, func() {
		b := a.Get(1 << 16)
		b.Release()
	})
	if allocs > 0 {
		t.Errorf("arena get/release: %.1f allocs/op, want 0", allocs)
	}
}
