// Package parallel provides the bounded fan-out primitive behind the
// chunk-crypto pipeline (DESIGN.md §10) and the pooled chunk-buffer
// arena behind the zero-copy data path (DESIGN.md §14). It is
// deliberately tiny: a worker-count resolver, a contiguous-range
// splitter, and a size-classed buffer pool, so hot paths can scale
// across cores without each call site reinventing pool plumbing or
// error collection.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob into an effective fan-out width:
// zero (the default wherever a knob is threaded through a config) means
// GOMAXPROCS, anything below one clamps to serial. The result never
// exceeds GOMAXPROCS: the knob is a width *request*, and running more
// CPU-bound workers than schedulable Ps only adds scheduler churn — the
// committed 1-cpu baseline showed w=8 costing ~30% over w=1 from
// exactly that oversubscription. Tests that need true fan-out on a
// small machine raise runtime.GOMAXPROCS first.
func Workers(knob int) int {
	p := runtime.GOMAXPROCS(0)
	if knob == 0 {
		return p
	}
	if knob < 1 {
		return 1
	}
	if knob > p {
		return p
	}
	return knob
}

// rangeRun is the shared state of one Ranges call. It exists so the
// whole fan-out costs two heap objects (this struct and the caller's
// span closure) regardless of width: workers are started with a method
// call on the pointer, and spans are claimed through one atomic rather
// than per-goroutine closures.
type rangeRun struct {
	n, w, per, rem int
	next           atomic.Int64
	wg             sync.WaitGroup
	mu             sync.Mutex
	err            error
	span           func(lo, hi int) error
}

// work claims span indices until none remain. Spans stay contiguous —
// index k maps to the same [lo, hi) split as ever — but claiming them
// through the atomic lets a worker that finishes early pick up a span a
// slower sibling has not started, which matters once Workers clamps the
// width below the requested knob.
func (r *rangeRun) work() {
	defer r.wg.Done()
	for {
		k := int(r.next.Add(1)) - 1
		if k >= r.w {
			return
		}
		lo := k*r.per + min(k, r.rem)
		hi := lo + r.per
		if k < r.rem {
			hi++
		}
		if err := r.span(lo, hi); err != nil {
			r.mu.Lock()
			if r.err == nil {
				r.err = err
			}
			r.mu.Unlock()
		}
	}
}

// Ranges splits the index space [0, n) into at most workers contiguous
// spans of near-equal size and runs span on each concurrently. With
// workers <= 1 (or n == 1) the single span runs inline on the calling
// goroutine, so serial callers pay nothing. Ranges always waits for
// every span to finish and returns one of the errors encountered (which
// one is unspecified when several spans fail).
//
// Contiguous spans — rather than a shared work queue — keep each worker
// on an adjacent slice of the caller's buffers (cache-friendly, no
// per-item channel traffic) and give it a natural place to hold
// per-worker scratch across its whole span. The calling goroutine
// participates as one of the workers, so only w-1 goroutines are
// spawned and the steady-state cost is two allocations per call.
func Ranges(n, workers int, span func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		return span(0, n)
	}

	r := &rangeRun{n: n, w: w, per: n / w, rem: n % w, span: span}
	r.wg.Add(w)
	// One shared zero-argument closure for every spawn: `go r.work()`
	// would heap-allocate a wrapper per goroutine to carry the receiver
	// (register-ABI `go` statements with arguments always do), which at
	// w=8 is most of the fan-out's allocation budget.
	body := func() { r.work() }
	for k := 1; k < w; k++ {
		go body()
	}
	r.work()
	r.wg.Wait()
	return r.err
}

// SpanBounds returns the [lo, hi) split Ranges uses for span k of n
// items across w workers. Exported so pipelined consumers (the
// seal-stream in internal/metadata) can translate per-span progress
// into a contiguous completed prefix without duplicating the split.
func SpanBounds(n, w, k int) (lo, hi int) {
	per, rem := n/w, n%w
	lo = k*per + min(k, rem)
	hi = lo + per
	if k < rem {
		hi++
	}
	return lo, hi
}
