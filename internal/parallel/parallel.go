// Package parallel provides the bounded fan-out primitive behind the
// chunk-crypto pipeline (DESIGN.md §10). It is deliberately tiny: a
// worker-count resolver and a contiguous-range splitter, so hot paths
// can scale across cores without each call site reinventing pool
// plumbing or error collection.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob into an effective fan-out width:
// zero (the default wherever a knob is threaded through a config) means
// GOMAXPROCS, anything below one clamps to serial.
func Workers(knob int) int {
	if knob == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if knob < 1 {
		return 1
	}
	return knob
}

// Ranges splits the index space [0, n) into at most workers contiguous
// spans of near-equal size and runs span on each concurrently. With
// workers <= 1 (or n == 1) the single span runs inline on the calling
// goroutine, so serial callers pay nothing. Ranges always waits for
// every span to finish and returns one of the errors encountered (which
// one is unspecified when several spans fail).
//
// Contiguous spans — rather than a shared work queue — keep each worker
// on an adjacent slice of the caller's buffers (cache-friendly, no
// per-item channel traffic) and give it a natural place to hold
// per-worker scratch across its whole span.
func Ranges(n, workers int, span func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		return span(0, n)
	}

	per, rem := n/w, n%w
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	lo := 0
	for k := 0; k < w; k++ {
		hi := lo + per
		if k < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := span(lo, hi); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	return firstErr
}
