package parallel

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Buffer pooling for the chunk data path (DESIGN.md §14). The fileio
// hot path turns over multi-megabyte sealed and plaintext spans on
// every write; allocating them per operation dominates the allocation
// profile and keeps the GC busy zeroing memory the crypto code is about
// to overwrite anyway. The arena leases size-classed buffers from
// sync.Pools instead, with two ownership rules the buffer-escape lint
// rule enforces at the call sites:
//
//  1. A leased buffer is owned exclusively by the leaseholder until
//     Release; nothing reached through it may be retained afterwards.
//  2. Release returns ownership to the arena — any later use of the
//     buffer (or a slice of it) is a use-after-free against whoever
//     leases it next.

const (
	// minClassBits..maxClassBits bound the pooled size classes at
	// 4 KiB..128 MiB (the AFS wire layer's maxFrameSize). Requests above
	// the top class fall through to plain allocations that Release
	// drops, so a pathological lease can never pin gigabytes in a pool.
	minClassBits = 12
	maxClassBits = 27
	numClasses   = maxClassBits - minClassBits + 1
)

// Buf is one leased buffer. B has the requested length and the size
// class's capacity, so callers can seal "into" it with three-index
// slices without reallocating. A Buf is not safe for concurrent use;
// hand the whole Buf off or split B into disjoint sub-slices.
type Buf struct {
	B []byte

	arena     *Arena
	class     int
	sensitive bool
	released  bool
}

// Arena is a size-classed sync.Pool set with hit/miss accounting. The
// zero value is not usable; call NewArena. Arenas are safe for
// concurrent use.
type Arena struct {
	classes [numClasses]sync.Pool
	hits    atomic.Uint64
	misses  atomic.Uint64
	// onHit/onMiss let an owner mirror the counters into its metrics
	// registry (enclave_chunk_pool_{hits,misses}_total) without the
	// arena importing obs. Set once before use; never called with locks
	// held.
	onHit  func()
	onMiss func()
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Shared is the process-wide arena for call sites without a natural
// owner (filenode key/IV scratch, cryptofs seal buffers). Subsystems
// that report pool health own a private arena instead, so their
// counters are theirs alone.
var Shared = NewArena()

// SetCounters mirrors every pool hit and miss into the given hooks
// (typically obs counter Incs). Must be called before the arena is
// shared across goroutines.
func (a *Arena) SetCounters(onHit, onMiss func()) {
	a.onHit = onHit
	a.onMiss = onMiss
}

// Stats returns the cumulative hit and miss counts.
func (a *Arena) Stats() (hits, misses uint64) {
	return a.hits.Load(), a.misses.Load()
}

// classFor maps a request size to its class index, or -1 for requests
// above the top class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// Get leases a buffer of length n. The contents are unspecified (the
// crypto call sites overwrite every byte; anyone else must not read
// before writing). Release returns it to the arena.
func (a *Arena) Get(n int) *Buf {
	if n < 0 {
		panic("parallel: negative buffer size")
	}
	c := classFor(n)
	if c < 0 {
		a.miss()
		return &Buf{B: make([]byte, n), arena: a, class: -1}
	}
	if v := a.classes[c].Get(); v != nil {
		b := v.(*Buf)
		b.B = b.B[:n]
		b.sensitive = false
		b.released = false
		a.hit()
		return b
	}
	a.miss()
	return &Buf{B: make([]byte, n, 1<<(minClassBits+c)), arena: a, class: c}
}

// GetSensitive is Get for buffers that will hold plaintext or key
// material: Release zeroes the full capacity before the buffer can be
// leased again, so no later leaseholder (or heap dump of the pool) sees
// stale secrets.
func (a *Arena) GetSensitive(n int) *Buf {
	b := a.Get(n)
	b.sensitive = true
	return b
}

func (a *Arena) hit() {
	a.hits.Add(1)
	if a.onHit != nil {
		a.onHit()
	}
}

func (a *Arena) miss() {
	a.misses.Add(1)
	if a.onMiss != nil {
		a.onMiss()
	}
}

// Release returns the buffer to its arena. Sensitive buffers are zeroed
// to full capacity first. Releasing twice panics: a double release
// would lease the same memory to two owners, which is exactly the
// corruption the ownership rules exist to prevent.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if b.released {
		panic("parallel: buffer released twice")
	}
	b.released = true
	if b.sensitive {
		clear(b.B[:cap(b.B)])
	}
	if b.class < 0 {
		return // oversized one-off: let the GC have it
	}
	a := b.arena
	b.B = b.B[:cap(b.B)]
	a.classes[b.class].Put(b)
}
