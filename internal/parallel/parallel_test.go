package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withProcs raises GOMAXPROCS for the duration of a test so fan-out
// paths are exercised even on single-core CI slices (Workers clamps
// every knob to GOMAXPROCS).
func withProcs(t *testing.T, p int) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestWorkers(t *testing.T) {
	withProcs(t, 4)
	if got := Workers(0); got != 4 {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS 4", got)
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d, want 3", got)
	}
	// The clamp: a knob above GOMAXPROCS is a request, not a mandate.
	if got := Workers(7); got != 4 {
		t.Fatalf("Workers(7) = %d, want clamp to GOMAXPROCS 4", got)
	}
}

func TestRangesCoversEveryIndexOnce(t *testing.T) {
	withProcs(t, 8)
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			err := Ranges(n, workers, func(lo, hi int) error {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad span [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestRangesPropagatesError(t *testing.T) {
	withProcs(t, 4)
	boom := errors.New("boom")
	var spans atomic.Int32
	err := Ranges(64, 4, func(lo, hi int) error {
		spans.Add(1)
		if lo == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if got := spans.Load(); got != 4 {
		t.Fatalf("spans run = %d, want 4 (all spans complete even on error)", got)
	}
}

func TestRangesSerialRunsInline(t *testing.T) {
	// workers=1 must not spawn: verify by observing the same goroutine's
	// stack-local variable without synchronization under -race.
	local := 0
	if err := Ranges(10, 1, func(lo, hi int) error {
		local += hi - lo
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if local != 10 {
		t.Fatalf("local = %d, want 10", local)
	}
}

func TestSpanBoundsMatchesRanges(t *testing.T) {
	withProcs(t, 8)
	for _, w := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{1, 2, 7, 64, 1000} {
			eff := w
			if eff > n {
				eff = n
			}
			var mu sync.Mutex
			got := make(map[int][2]int)
			err := Ranges(n, w, func(lo, hi int) error {
				mu.Lock()
				got[lo] = [2]int{lo, hi}
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < eff; k++ {
				lo, hi := SpanBounds(n, eff, k)
				if s, ok := got[lo]; !ok || s != [2]int{lo, hi} {
					t.Fatalf("n=%d w=%d span %d: SpanBounds [%d,%d) not produced by Ranges (got %v)", n, w, k, lo, hi, got)
				}
			}
		}
	}
}
