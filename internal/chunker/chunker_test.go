package chunker

import (
	"bytes"
	"math/rand"
	"testing"
)

// content returns deterministic pseudo-random bytes (high-entropy, so
// the mask fires at the expected rate).
func content(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func boundaries(t *testing.T, cfg Config, data []byte) []int {
	t.Helper()
	cuts, err := Boundaries(cfg, data)
	if err != nil {
		t.Fatalf("Boundaries: %v", err)
	}
	return cuts
}

func TestConfigDefaults(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	cfg := c.Config()
	if cfg.Avg != DefaultAvg || cfg.Min != DefaultAvg/4 || cfg.Max != DefaultAvg*4 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	// A tiny Avg clamps Min to the floor rather than zero.
	c2, err := New(Config{Avg: 256})
	if err != nil {
		t.Fatalf("New small: %v", err)
	}
	defer c2.Close()
	if got := c2.Config().Min; got != MinChunkFloor {
		t.Fatalf("Min = %d, want floor %d", got, MinChunkFloor)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Min: 1024, Avg: 512, Max: 4096}, // Avg < Min
		{Min: 512, Avg: 1024, Max: 768},  // Max < Avg
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	// Min below the floor is clamped up, not rejected: derived configs
	// (ChunkSize/4) may legitimately land under it.
	c, err := New(Config{Min: 16, Avg: 1024, Max: 4096})
	if err != nil {
		t.Fatalf("New with tiny Min: %v", err)
	}
	defer c.Close()
	if c.Config().Min != MinChunkFloor {
		t.Fatalf("Min = %d, want clamped %d", c.Config().Min, MinChunkFloor)
	}
}

func TestMaskFor(t *testing.T) {
	cases := map[int]uint32{1024: 1023, 1025: 2047, 4096: 4095, 65536: 65535}
	for avg, want := range cases {
		if got := maskFor(avg); got != want {
			t.Errorf("maskFor(%d) = %d, want %d", avg, got, want)
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	cfg := Config{Avg: 1024}
	if cuts := boundaries(t, cfg, nil); cuts != nil {
		t.Fatalf("empty input produced cuts %v", cuts)
	}
	// Input shorter than Min: one final chunk at Flush.
	data := content(1, 100)
	cuts := boundaries(t, cfg, data)
	if len(cuts) != 1 || cuts[0] != 100 {
		t.Fatalf("tiny input cuts = %v, want [100]", cuts)
	}
}

func TestSizeBounds(t *testing.T) {
	cfg := Config{Min: 512, Avg: 2048, Max: 8192}
	data := content(2, 1<<20)
	cuts := boundaries(t, cfg, data)
	if cuts[len(cuts)-1] != len(data) {
		t.Fatalf("last cut %d != len %d", cuts[len(cuts)-1], len(data))
	}
	prev := 0
	for i, cut := range cuts {
		size := cut - prev
		if size <= 0 {
			t.Fatalf("non-positive chunk at cut %d", i)
		}
		if size > cfg.Max {
			t.Fatalf("chunk %d size %d exceeds Max %d", i, size, cfg.Max)
		}
		if size < cfg.Min && i != len(cuts)-1 {
			t.Fatalf("non-final chunk %d size %d below Min %d", i, size, cfg.Min)
		}
		prev = cut
	}
	// The average should land within 4x of the target either way for
	// high-entropy input (loose: the mask geometric distribution is
	// truncated by Min and Max).
	avg := len(data) / len(cuts)
	if avg < cfg.Min || avg > cfg.Max {
		t.Fatalf("observed average %d outside [Min,Max]", avg)
	}
}

func TestMaxForcedCut(t *testing.T) {
	// All-zero input never matches a nontrivial mask: every chunk must
	// be cut at exactly Max (except the final remainder).
	cfg := Config{Min: 512, Avg: 2048, Max: 4096}
	data := make([]byte, 10000)
	cuts := boundaries(t, cfg, data)
	want := []int{4096, 8192, 10000}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
}

func TestStreamingEqualsOneShot(t *testing.T) {
	cfg := Config{Min: 256, Avg: 1024, Max: 4096}
	data := content(3, 256<<10)
	want := boundaries(t, cfg, data)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var got []int
		rest := data
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			got = c.Feed(rest[:n], got)
			rest = rest[n:]
		}
		if cut, ok := c.Flush(); ok {
			got = append(got, cut)
		}
		c.Close()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d cuts, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: cut[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestChunkerReuseAfterFlush(t *testing.T) {
	cfg := Config{Min: 256, Avg: 1024, Max: 4096}
	data := content(4, 64<<10)
	want := boundaries(t, cfg, data)

	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	for round := 0; round < 3; round++ {
		got := c.Feed(data, nil)
		if cut, ok := c.Flush(); ok {
			got = append(got, cut)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d cuts, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: cut[%d] = %d, want %d", round, i, got[i], want[i])
			}
		}
	}
}

// TestEditLocality is the property dedup depends on: a point edit
// re-chunks only its neighbourhood, so chunks away from the edit keep
// their exact (offset-adjusted) content.
func TestEditLocality(t *testing.T) {
	cfg := Config{Min: 512, Avg: 2048, Max: 8192}
	orig := content(5, 256<<10)
	edited := bytes.Clone(orig)
	edited[128<<10] ^= 0xff

	origChunks := chunkSet(t, cfg, orig)
	editChunks := chunkSet(t, cfg, edited)

	shared := 0
	for h := range editChunks {
		if origChunks[h] {
			shared++
		}
	}
	if len(editChunks)-shared > 3 {
		t.Fatalf("point edit changed %d of %d chunks; want <= 3",
			len(editChunks)-shared, len(editChunks))
	}
}

func chunkSet(t *testing.T, cfg Config, data []byte) map[string]bool {
	t.Helper()
	set := make(map[string]bool)
	prev := 0
	for _, cut := range boundaries(t, cfg, data) {
		set[string(data[prev:cut])] = true
		prev = cut
	}
	return set
}

func TestClosePanicsOnUse(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Close()
	c.Close() // second Close is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Feed after Close did not panic")
		}
	}()
	c.Feed([]byte("x"), nil)
}

func BenchmarkChunker(b *testing.B) {
	data := content(6, 4<<20)
	cfg := Config{Avg: 4096}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Boundaries(cfg, data); err != nil {
			b.Fatal(err)
		}
	}
}
