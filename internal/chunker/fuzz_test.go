package chunker

import (
	"math/rand"
	"testing"
)

// FuzzChunkerBoundaries checks the chunker's load-bearing invariants
// under arbitrary input and arbitrary stream splits:
//
//  1. streaming (any split sequence) ≡ one-shot boundaries,
//  2. every chunk size lies in [Min, Max] except a shorter final chunk,
//  3. the cuts tile the input exactly (strictly increasing, last ==
//     len(data)),
//  4. re-chunking the concatenation of the chunks reproduces the cuts
//     (determinism / self-consistency).
func FuzzChunkerBoundaries(f *testing.F) {
	f.Add([]byte(""), uint64(0))
	f.Add([]byte("hello, content-defined world"), uint64(1))
	f.Add(content(7, 4096), uint64(7))
	f.Add(make([]byte, 2048), uint64(3)) // low entropy: Max-forced cuts
	f.Add(content(8, 300), uint64(42))

	f.Fuzz(func(t *testing.T, data []byte, splitSeed uint64) {
		cfg := Config{Min: MinChunkFloor, Avg: 512, Max: 2048}
		oneShot, err := Boundaries(cfg, data)
		if err != nil {
			t.Fatalf("Boundaries: %v", err)
		}

		// Invariant 3: exact tiling.
		prev := 0
		for i, cut := range oneShot {
			if cut <= prev || cut > len(data) {
				t.Fatalf("cut %d = %d not in (%d, %d]", i, cut, prev, len(data))
			}
			size := cut - prev
			// Invariant 2: size bounds.
			if size > cfg.Max {
				t.Fatalf("chunk %d size %d > Max %d", i, size, cfg.Max)
			}
			if size < cfg.Min && i != len(oneShot)-1 {
				t.Fatalf("non-final chunk %d size %d < Min %d", i, size, cfg.Min)
			}
			prev = cut
		}
		if len(data) == 0 {
			if oneShot != nil {
				t.Fatalf("empty input produced cuts %v", oneShot)
			}
			return
		}
		if oneShot[len(oneShot)-1] != len(data) {
			t.Fatalf("last cut %d != len %d", oneShot[len(oneShot)-1], len(data))
		}

		// Invariant 1: arbitrary split streaming matches.
		rng := rand.New(rand.NewSource(int64(splitSeed)))
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer c.Close()
		var streamed []int
		rest := data
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			streamed = c.Feed(rest[:n], streamed)
			rest = rest[n:]
		}
		if cut, ok := c.Flush(); ok {
			streamed = append(streamed, cut)
		}
		if len(streamed) != len(oneShot) {
			t.Fatalf("streamed %d cuts, one-shot %d", len(streamed), len(oneShot))
		}
		for i := range oneShot {
			if streamed[i] != oneShot[i] {
				t.Fatalf("cut[%d]: streamed %d, one-shot %d", i, streamed[i], oneShot[i])
			}
		}

		// Invariant 4: re-chunking the concatenation of chunks (the
		// original data, reassembled) is a fixed point.
		again, err := Boundaries(cfg, data)
		if err != nil {
			t.Fatalf("Boundaries (again): %v", err)
		}
		for i := range oneShot {
			if again[i] != oneShot[i] {
				t.Fatalf("re-chunk diverged at %d: %d vs %d", i, again[i], oneShot[i])
			}
		}
	})
}
