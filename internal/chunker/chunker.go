// Package chunker implements content-defined chunking with a buzhash
// rolling hash (DESIGN.md §16). A chunker scans a byte stream and
// emits chunk boundaries wherever the low bits of a 32-bit rolling
// hash over the trailing 64-byte window match a mask derived from the
// target average size. Because the hash depends only on the window
// contents — and the window is reset at every cut — boundaries are a
// pure function of the bytes since the previous cut: inserting or
// deleting bytes re-chunks only the neighbourhood of the edit, and the
// same content always produces the same chunks no matter how the
// stream is split across Feed calls. That determinism is what makes
// the content-addressed store (internal/cas) dedup: unchanged spans
// re-derive the same handles.
//
// The rolling window is leased from an internal/parallel arena
// (sensitive class: the window holds plaintext) so steady-state
// chunking allocates nothing per file.
package chunker

import (
	"fmt"
	"math/bits"

	"nexus/internal/parallel"
)

// windowSize is the rolling-hash window in bytes. 64 is the standard
// buzhash width: with a 32-bit hash the outgoing byte's contribution
// has been rotated 64 ≡ 0 (mod 32) positions by the time it leaves, so
// it cancels with a plain XOR and the roll is three XORs per byte.
const windowSize = 64

// MinChunkFloor is the smallest permitted minimum chunk size. Chunks
// below this would drown the data path in per-chunk sealing overhead
// (each chunk pays a 16-byte tag plus a 36-byte extent entry).
const MinChunkFloor = 128

// Config bounds the chunk size distribution.
type Config struct {
	// Min is the smallest chunk the chunker will emit (except for the
	// final chunk of a stream, which may be shorter). The hash is not
	// consulted until Min bytes have accumulated, which also skips the
	// cut-point clustering small windows suffer. Default Avg/4.
	Min int
	// Avg is the target average chunk size. It is rounded up to a
	// power of two to derive the boundary mask: each byte past Min cuts
	// with probability 2^-ceil(log2(Avg)). Default 64 KiB.
	Avg int
	// Max forcibly cuts a chunk that reaches this size, bounding the
	// damage of low-entropy runs that never match the mask. Default
	// Avg*4.
	Max int
}

// DefaultAvg is the default target average chunk size.
const DefaultAvg = 64 << 10

func (c Config) withDefaults() Config {
	if c.Avg == 0 {
		c.Avg = DefaultAvg
	}
	if c.Min == 0 {
		c.Min = c.Avg / 4
	}
	if c.Min < MinChunkFloor {
		c.Min = MinChunkFloor
	}
	if c.Max == 0 {
		c.Max = c.Avg * 4
	}
	return c
}

func (c Config) validate() error {
	if c.Min < MinChunkFloor {
		return fmt.Errorf("chunker: Min %d below floor %d", c.Min, MinChunkFloor)
	}
	if c.Avg < c.Min {
		return fmt.Errorf("chunker: Avg %d below Min %d", c.Avg, c.Min)
	}
	if c.Max < c.Avg {
		return fmt.Errorf("chunker: Max %d below Avg %d", c.Max, c.Avg)
	}
	return nil
}

// maskFor derives the boundary mask from the average chunk size: the
// smallest 2^k-1 with 2^k >= avg. A boundary fires when the low k bits
// of the rolling hash are all ones.
func maskFor(avg int) uint32 {
	k := bits.Len(uint(avg - 1))
	return uint32(1)<<k - 1
}

// table is the byte-substitution table the rolling hash mixes through.
// It is generated once from a fixed seed by a splitmix64 sequence, so
// boundaries are identical across builds, architectures, and processes
// — a requirement, since chunk handles derived from these boundaries
// are persisted.
var table = buildTable()

func buildTable() (t [256]uint32) {
	const golden = 0x9e3779b97f4a7c15
	s := uint64(golden) // fixed seed: chunk boundaries are a wire format
	for i := range t {
		s += golden
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		t[i] = uint32(z >> 32)
	}
	return t
}

// Chunker is a streaming content-defined chunker. Feed it bytes in any
// split; it reports the same absolute cut offsets as a single Feed of
// the concatenation. Not safe for concurrent use.
type Chunker struct {
	cfg  Config
	mask uint32

	win  *parallel.Buf // leased windowSize-byte ring (plaintext: sensitive)
	wpos int
	h    uint32
	n    int // bytes in the current (unfinished) chunk
	off  int // absolute offset of the next byte to be fed

	closed bool
}

// New returns a chunker over cfg (zero fields take defaults), leasing
// its window from the shared arena. Call Close when done to return the
// window.
func New(cfg Config) (*Chunker, error) {
	return NewWith(cfg, parallel.Shared)
}

// NewWith is New with an explicit buffer arena (the enclave passes its
// own so pool hit/miss counters land in its metrics).
func NewWith(cfg Config, arena *parallel.Arena) (*Chunker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Chunker{
		cfg:  cfg,
		mask: maskFor(cfg.Avg),
		win:  arena.GetSensitive(windowSize),
	}
	clear(c.win.B)
	return c, nil
}

// Config returns the effective (defaulted) configuration.
func (c *Chunker) Config() Config { return c.cfg }

// resetChunk clears the per-chunk rolling state. The window starts
// zero-filled for every chunk, so a chunk's boundary depends only on
// its own bytes — the determinism the dedup layer relies on.
func (c *Chunker) resetChunk() {
	c.h = 0
	c.n = 0
	c.wpos = 0
	clear(c.win.B)
}

// Feed consumes p and returns the absolute end offsets (exclusive) of
// every chunk completed within it. Offsets are cumulative across Feed
// calls; cuts may be appended to a caller-owned slice by passing it as
// cuts.
func (c *Chunker) Feed(p []byte, cuts []int) []int {
	if c.closed {
		panic("chunker: Feed after Close")
	}
	win := c.win.B
	h, wpos, n := c.h, c.wpos, c.n
	min, max, mask := c.cfg.Min, c.cfg.Max, c.mask
	for i, b := range p {
		out := win[wpos]
		win[wpos] = b
		wpos = (wpos + 1) & (windowSize - 1)
		h = bits.RotateLeft32(h, 1) ^ table[out] ^ table[b]
		n++
		if (n >= min && h&mask == mask) || n >= max {
			cuts = append(cuts, c.off+i+1)
			h, wpos, n = 0, 0, 0
			clear(win)
		}
	}
	c.h, c.wpos, c.n = h, wpos, n
	c.off += len(p)
	return cuts
}

// Flush terminates the stream: if a partial chunk is pending its end
// offset is returned with ok=true. The chunker is reset and may be
// reused for a fresh stream (offsets restart at zero).
func (c *Chunker) Flush() (cut int, ok bool) {
	if c.closed {
		panic("chunker: Flush after Close")
	}
	cut, ok = c.off, c.n > 0
	c.resetChunk()
	c.off = 0
	return cut, ok
}

// Close returns the window buffer to its arena. The chunker must not
// be used afterwards.
func (c *Chunker) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.win.Release()
	c.win = nil
}

// Boundaries one-shots a full buffer: it returns the exclusive end
// offset of every chunk, the last always equal to len(data). Empty
// input yields nil. Equivalent to New + Feed + Flush with the window
// leased and released around the call.
func Boundaries(cfg Config, data []byte) ([]int, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	cuts := c.Feed(data, nil)
	if cut, ok := c.Flush(); ok {
		cuts = append(cuts, cut)
	}
	return cuts, nil
}
