package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"nexus/internal/apps"
	"nexus/internal/backend"
	"nexus/internal/fsapi"
	"nexus/internal/plainfs"
	"nexus/internal/workload"
)

// AppRow is one bar pair of Fig. 6: one utility over one workload.
type AppRow struct {
	Workload string
	App      string
	OpenAFS  time.Duration
	Nexus    time.Duration
	Overhead float64
}

// LinuxApps reproduces Fig. 6 ("Latency of common Linux applications")
// over the given flat workloads (paper: LFSD, MFMD, SFLD of Table III),
// running tar -x, du, grep, tar -c, cp and mv.
func LinuxApps(env *Env, specs []workload.FlatSpec) ([]AppRow, error) {
	var rows []AppRow
	for _, spec := range specs {
		// Pre-build the tar archive once on a scratch filesystem; both
		// stacks extract the identical stream.
		scratch := plainfs.New(backend.NewMemStore())
		if err := workload.MaterializeFlat(scratch, "/w", spec, env.Config.Scale); err != nil {
			return nil, fmt.Errorf("building %s: %w", spec.Name, err)
		}
		var archive bytes.Buffer
		if err := apps.TarCreate(scratch, "/w", &archive); err != nil {
			return nil, fmt.Errorf("archiving %s: %w", spec.Name, err)
		}

		type appCase struct {
			name string
			// fresh reports whether the case needs a fresh tree per run
			// (tar -x creates it; others reuse a prepared one).
			run func(fs fsapi.FileSystem, root string) error
		}
		prepareTree := func(fs fsapi.FileSystem, root string) error {
			if ok, err := fs.Exists(root + "/tree"); err != nil {
				return err
			} else if !ok {
				if err := apps.TarExtract(fs, root+"/tree", bytes.NewReader(archive.Bytes())); err != nil {
					return err
				}
			}
			return nil
		}
		cases := []appCase{
			{name: "tar-x", run: func(fs fsapi.FileSystem, root string) error {
				return apps.TarExtract(fs, root+"/x", bytes.NewReader(archive.Bytes()))
			}},
			{name: "du", run: func(fs fsapi.FileSystem, root string) error {
				_, err := apps.Du(fs, root+"/tree")
				return err
			}},
			{name: "grep", run: func(fs fsapi.FileSystem, root string) error {
				_, err := apps.Grep(fs, root+"/tree", "javascript")
				return err
			}},
			{name: "tar-c", run: func(fs fsapi.FileSystem, root string) error {
				var out bytes.Buffer
				return apps.TarCreate(fs, root+"/tree", &out)
			}},
			{name: "cp", run: func(fs fsapi.FileSystem, root string) error {
				return apps.Cp(fs, root+"/tree/file00000", root+"/copy")
			}},
			{name: "mv", run: func(fs fsapi.FileSystem, root string) error {
				if err := apps.Mv(fs, root+"/tree/file00001", root+"/moved"); err != nil {
					return err
				}
				// Move it back so repeated runs find the source.
				return apps.Mv(fs, root+"/moved", root+"/tree/file00001")
			}},
		}

		for _, c := range cases {
			prepare := prepareTree
			if c.name == "tar-x" {
				prepare = func(fs fsapi.FileSystem, root string) error {
					return fs.RemoveAll(root + "/x")
				}
			}
			plain, nx, err := env.Both(prepare, c.run)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", c.name, spec.Name, err)
			}
			rows = append(rows, AppRow{
				Workload: spec.Name,
				App:      c.name,
				OpenAFS:  plain,
				Nexus:    nx,
				Overhead: ratio(plain, nx),
			})
		}
	}
	return rows, nil
}

// PrintLinuxApps renders Fig. 6 as a table grouped by workload.
func PrintLinuxApps(w io.Writer, rows []AppRow) {
	fmt.Fprintln(w, "Fig 6 — Latency of common Linux applications")
	current := ""
	for _, r := range rows {
		if r.Workload != current {
			current = r.Workload
			fmt.Fprintf(w, "%s\n", current)
			fmt.Fprintf(w, "  %-8s %12s %12s %10s\n", "app", "openafs", "nexus", "overhead")
		}
		fmt.Fprintf(w, "  %-8s %12s %12s %9.2fx\n",
			r.App, fmtDur(r.OpenAFS), fmtDur(r.Nexus), r.Overhead)
	}
	fmt.Fprintln(w)
}
