package bench

import (
	"fmt"
	"io"
	"testing"

	"nexus/internal/metadata"
	"nexus/internal/uuid"
	"nexus/internal/workload"
)

// ChunkCryptoRow is one worker-count column of the chunk-crypto
// microbenchmark: encrypting and decrypting a fixed buffer through the
// Filenode pipeline at a given fan-out.
type ChunkCryptoRow struct {
	Workers        int
	Bytes          int64
	EncryptNsPerOp int64
	EncryptMBPerS  float64
	EncryptAllocs  int64
	DecryptNsPerOp int64
	DecryptMBPerS  float64
	DecryptAllocs  int64
	// Speedup is serial encrypt time over this row's encrypt time
	// (1.0 for the workers=1 row; >1 means the fan-out helped).
	Speedup float64
}

// ChunkCrypto benchmarks EncryptContentWorkers/DecryptContentWorkers on
// a sizeBytes buffer at each worker count, via testing.Benchmark so the
// numbers carry ns/op and allocs/op like a `go test -bench` run.
func ChunkCrypto(sizeBytes int64, chunkSize uint32, workerCounts []int) ([]ChunkCryptoRow, error) {
	if sizeBytes < 1 {
		sizeBytes = 1
	}
	if chunkSize == 0 {
		chunkSize = metadata.DefaultChunkSize
	}
	data := workload.NewContent(1).Fill(sizeBytes)

	rows := make([]ChunkCryptoRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		f := metadata.NewFilenode(uuid.New(), uuid.Nil, chunkSize)
		var benchErr error

		enc := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(sizeBytes)
			for i := 0; i < b.N; i++ {
				if _, err := f.EncryptContentWorkers(data, w); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("bench: chunkcrypto encrypt w=%d: %w", w, benchErr)
		}

		blob, err := f.EncryptContentWorkers(data, w)
		if err != nil {
			return nil, fmt.Errorf("bench: chunkcrypto w=%d: %w", w, err)
		}
		dec := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(sizeBytes)
			for i := 0; i < b.N; i++ {
				if _, err := f.DecryptContentWorkers(blob, w); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("bench: chunkcrypto decrypt w=%d: %w", w, benchErr)
		}

		rows = append(rows, ChunkCryptoRow{
			Workers:        w,
			Bytes:          sizeBytes,
			EncryptNsPerOp: enc.NsPerOp(),
			EncryptMBPerS:  mbPerSec(sizeBytes, enc),
			EncryptAllocs:  enc.AllocsPerOp(),
			DecryptNsPerOp: dec.NsPerOp(),
			DecryptMBPerS:  mbPerSec(sizeBytes, dec),
			DecryptAllocs:  dec.AllocsPerOp(),
		})
	}

	// Speedup is relative to the slowest-common-denominator serial row;
	// without one (no workers=1 in the sweep) it stays zero.
	for _, base := range rows {
		if base.Workers != 1 || base.EncryptNsPerOp <= 0 {
			continue
		}
		for i := range rows {
			if rows[i].EncryptNsPerOp > 0 {
				rows[i].Speedup = float64(base.EncryptNsPerOp) / float64(rows[i].EncryptNsPerOp)
			}
		}
		break
	}
	return rows, nil
}

func mbPerSec(bytes int64, r testing.BenchmarkResult) float64 {
	if r.T <= 0 {
		return 0
	}
	total := float64(bytes) * float64(r.N)
	return total / r.T.Seconds() / (1 << 20)
}

// ChunkCryptoMetrics flattens rows into report metrics keyed like
// "encrypt_w4" / "decrypt_w4".
func ChunkCryptoMetrics(rows []ChunkCryptoRow) Experiment {
	exp := make(Experiment, 2*len(rows))
	for _, r := range rows {
		exp[fmt.Sprintf("encrypt_w%d", r.Workers)] = Metric{
			NsPerOp:     float64(r.EncryptNsPerOp),
			MBPerSec:    r.EncryptMBPerS,
			AllocsPerOp: float64(r.EncryptAllocs),
		}
		exp[fmt.Sprintf("decrypt_w%d", r.Workers)] = Metric{
			NsPerOp:     float64(r.DecryptNsPerOp),
			MBPerSec:    r.DecryptMBPerS,
			AllocsPerOp: float64(r.DecryptAllocs),
		}
	}
	return exp
}

// PrintChunkCrypto renders the sweep as a table.
func PrintChunkCrypto(w io.Writer, rows []ChunkCryptoRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Chunk crypto pipeline — %s buffer, per-chunk AES-GCM\n", fmtBytes(rows[0].Bytes))
	fmt.Fprintf(w, "%8s %14s %12s %10s %14s %12s %10s %9s\n",
		"workers", "enc ns/op", "enc MB/s", "enc allocs", "dec ns/op", "dec MB/s", "dec allocs", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %14d %12.1f %10d %14d %12.1f %10d %8.2fx\n",
			r.Workers, r.EncryptNsPerOp, r.EncryptMBPerS, r.EncryptAllocs,
			r.DecryptNsPerOp, r.DecryptMBPerS, r.DecryptAllocs, r.Speedup)
	}
	fmt.Fprintln(w)
}
