package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"nexus"
	"nexus/internal/fsapi"
	"nexus/internal/workload"
)

// The dedup experiment (DESIGN.md §16) measures what the
// content-defined chunk store buys on the wire: two stacks — one
// fixed-size (the paper's layout), one content-defined — run the same
// workloads over a metered in-process store, and the rows report
// logical bytes written vs bytes actually uploaded. Unlike the latency
// experiments there is no network simulation: upload bytes are a
// deterministic property of the write path, so the in-process store
// measures them exactly.
//
// Two workloads bracket the design space:
//
//   - repeated-edit: one file, one flipped byte per op, full rewrite
//     through FS.WriteFile — the "save a large file in an editor"
//     pattern. Fixed-size re-seals and re-uploads every chunk; CDC
//     re-uploads only the chunks containing the edit.
//   - git-clone: the same synthetic repository tree materialized
//     twice — the "clone the repo again next to itself" pattern.
//     Identical plaintext stores once under CDC.

// dedupAvgChunk is the CDC average chunk size both arms are built
// with (the fixed arm ignores it for dedup purposes — its whole file
// re-uploads regardless of chunk granularity).
const dedupAvgChunk = 4096

// dedupEditOps is the number of single-byte-edit rewrites measured in
// the repeated-edit workload.
const dedupEditOps = 32

// DedupRow is one (workload, mode) cell of the dedup experiment.
type DedupRow struct {
	Workload string // "repeated-edit" or "git-clone"
	Mode     string // "fixed" or "cdc"
	Ops      int
	// LogicalBytes is plaintext handed to WriteFile across all ops;
	// UploadedBytes is what actually crossed the store's upload path
	// (chunks, data objects, and all metadata — filenodes, dirnodes,
	// ref table, freshness root).
	LogicalBytes  int64
	UploadedBytes int64
	Elapsed       time.Duration
}

// DedupRatio is logical bytes over uploaded bytes: >1 means the store
// transferred less than the application wrote.
func (r DedupRow) DedupRatio() float64 {
	if r.UploadedBytes == 0 {
		return 0
	}
	return float64(r.LogicalBytes) / float64(r.UploadedBytes)
}

// UploadedPerOp is the post-dedup upload cost of one operation.
func (r DedupRow) UploadedPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.UploadedBytes) / float64(r.Ops)
}

// NsPerOp is the mean wall-clock per operation.
func (r DedupRow) NsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Ops)
}

// meteredStore wraps an ObjectStore and counts every uploaded byte.
// The freshness-proof wrapper the client adds by default sits above
// this, so Merkle root updates are billed like any other upload.
type meteredStore struct {
	inner    nexus.ObjectStore
	uploaded atomic.Int64
}

func (m *meteredStore) GetVersioned(name string) ([]byte, uint64, error) {
	return m.inner.GetVersioned(name)
}

func (m *meteredStore) PutVersioned(name string, data []byte) (uint64, error) {
	m.uploaded.Add(int64(len(data)))
	return m.inner.PutVersioned(name, data)
}

func (m *meteredStore) Delete(name string) error { return m.inner.Delete(name) }

func (m *meteredStore) Lock(name string) (func(), error) { return m.inner.Lock(name) }

// dedupStack builds one measured in-process stack: a memory store
// behind a byte meter, under a client with the given chunking mode.
func dedupStack(contentDefined bool) (fsapi.FileSystem, *meteredStore, error) {
	meter := &meteredStore{inner: nexus.NewMemoryStore()}
	client, err := nexus.NewClient(nexus.ClientConfig{
		Store:          meter,
		ChunkSize:      dedupAvgChunk,
		ContentDefined: contentDefined,
		// Eager metadata keeps per-op upload accounting deterministic:
		// every op's metadata lands before the next op starts.
		WritebackMode: "off",
	})
	if err != nil {
		return nil, nil, err
	}
	owner, err := nexus.NewIdentity("dedup-owner")
	if err != nil {
		return nil, nil, err
	}
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		return nil, nil, err
	}
	return fsapi.Nexus(vol.FS()), meter, nil
}

// Dedup runs both workloads under both chunking modes. Scale divides
// the repeated-edit file size (64 MiB nominal, so scale 1024 edits a
// 64 KiB file) and the clone tree's file sizes, like the latency
// experiments.
func Dedup(cfg Config) ([]DedupRow, error) {
	cfg = cfg.withDefaults()
	var rows []DedupRow
	for _, mode := range []struct {
		name string
		cdc  bool
	}{{"fixed", false}, {"cdc", true}} {
		edit, err := dedupRepeatedEdit(cfg, mode.name, mode.cdc)
		if err != nil {
			return nil, fmt.Errorf("dedup %s repeated-edit: %w", mode.name, err)
		}
		rows = append(rows, edit)
		clone, err := dedupGitClone(cfg, mode.name, mode.cdc)
		if err != nil {
			return nil, fmt.Errorf("dedup %s git-clone: %w", mode.name, err)
		}
		rows = append(rows, clone)
	}
	return rows, nil
}

func dedupRepeatedEdit(cfg Config, mode string, cdc bool) (DedupRow, error) {
	fs, meter, err := dedupStack(cdc)
	if err != nil {
		return DedupRow{}, err
	}
	size := int64(64<<20) / cfg.Scale
	if size < 16<<10 {
		size = 16 << 10
	}
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, size)
	rng.Read(data)
	if err := fs.WriteFile("/f", data); err != nil {
		return DedupRow{}, err
	}
	// Measure steady-state edits, not the initial population.
	meter.uploaded.Store(0)
	start := time.Now()
	for i := 0; i < dedupEditOps; i++ {
		data[rng.Intn(len(data))] ^= 0xff
		if err := fs.WriteFile("/f", data); err != nil {
			return DedupRow{}, err
		}
	}
	return DedupRow{
		Workload:      "repeated-edit",
		Mode:          mode,
		Ops:           dedupEditOps,
		LogicalBytes:  int64(dedupEditOps) * size,
		UploadedBytes: meter.uploaded.Load(),
		Elapsed:       time.Since(start),
	}, nil
}

func dedupGitClone(cfg Config, mode string, cdc bool) (DedupRow, error) {
	fs, meter, err := dedupStack(cdc)
	if err != nil {
		return DedupRow{}, err
	}
	// The tree carries CI-sized files directly instead of dividing by
	// cfg.Scale: scaling a repository's files down to a few bytes each
	// leaves nothing but per-file metadata on the wire, and the
	// experiment is about content bytes. Files are sized well above the
	// 4 KiB average chunk for the same reason — per-write metadata
	// (dirnode, filenode, ref table, freshness root) is a fixed tax
	// that swamps sub-chunk files in either mode.
	tree := workload.Generate(workload.TreeSpec{
		Name: "dedup-repo", NumFiles: 24, NumDirs: 6, MaxDepth: 3,
		MinFileSize: 64 << 10, MaxFileSize: 1 << 20, Seed: 104,
	})
	logical := tree.TotalBytes
	start := time.Now()
	ops := 0
	for _, root := range []string{"/clone1", "/clone2"} {
		n, err := workload.Materialize(fs, root, tree, 1)
		if err != nil {
			return DedupRow{}, err
		}
		ops += n
	}
	return DedupRow{
		Workload:      "git-clone",
		Mode:          mode,
		Ops:           ops,
		LogicalBytes:  2 * logical,
		UploadedBytes: meter.uploaded.Load(),
		Elapsed:       time.Since(start),
	}, nil
}

// PrintDedup renders the experiment as a table.
func PrintDedup(w io.Writer, rows []DedupRow) {
	fmt.Fprintln(w, "DESIGN.md §16 — Content-defined dedup: bytes uploaded vs bytes written")
	fmt.Fprintf(w, "%-14s %-6s %6s %12s %12s %8s %14s\n",
		"workload", "mode", "ops", "logical", "uploaded", "dedup", "uploaded/op")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-6s %6d %12s %12s %7.2fx %14s\n",
			r.Workload, r.Mode, r.Ops,
			fmtBytes(r.LogicalBytes), fmtBytes(r.UploadedBytes),
			r.DedupRatio(), fmtBytes(int64(r.UploadedPerOp())))
	}
	fmt.Fprintln(w)
}

// DedupMetrics converts rows into the dedup experiment's report entry.
// Every metric is informational: dedup ratios and upload costs move by
// design with workload content, so the compare gate shows them without
// failing on them.
func DedupMetrics(rows []DedupRow) Experiment {
	exp := Experiment{}
	for _, r := range rows {
		name := fmt.Sprintf("%s_%s", metricName(r.Workload), r.Mode)
		exp[name] = Metric{
			NsPerOp:            r.NsPerOp(),
			DedupRatio:         r.DedupRatio(),
			UploadedBytesPerOp: r.UploadedPerOp(),
			Informational:      true,
		}
	}
	return exp
}

// metricName converts a workload label to a metric-name token.
func metricName(workload string) string {
	out := make([]byte, len(workload))
	for i := 0; i < len(workload); i++ {
		c := workload[i]
		if c == '-' {
			c = '_'
		}
		out[i] = c
	}
	return string(out)
}
