package bench

import (
	"fmt"
	"io"
	"time"

	"nexus/internal/fsapi"
	"nexus/internal/workload"
)

// GitCloneRow is one bar pair of Fig. 5c: the latency of cloning (i.e.
// materializing) a repository tree into the volume.
type GitCloneRow struct {
	Repo     string
	NumFiles int
	NumDirs  int
	OpenAFS  time.Duration
	Nexus    time.Duration
	Overhead float64
}

// GitClone reproduces Fig. 5c ("Latency for cloning Git repositories")
// over the given tree specs (paper: redis, julia, nodejs).
func GitClone(env *Env, specs []workload.TreeSpec) ([]GitCloneRow, error) {
	rows := make([]GitCloneRow, 0, len(specs))
	for _, spec := range specs {
		tree := workload.Generate(spec)
		plain, nx, err := env.Both(
			nil,
			func(fs fsapi.FileSystem, root string) error {
				_, err := workload.Materialize(fs, root, tree, env.Config.Scale)
				return err
			},
		)
		if err != nil {
			return nil, fmt.Errorf("git clone %s: %w", spec.Name, err)
		}
		rows = append(rows, GitCloneRow{
			Repo:     spec.Name,
			NumFiles: len(tree.Files),
			NumDirs:  len(tree.Dirs),
			OpenAFS:  plain,
			Nexus:    nx,
			Overhead: ratio(plain, nx),
		})
	}
	return rows, nil
}

// PrintGitClone renders Fig. 5c as a table.
func PrintGitClone(w io.Writer, rows []GitCloneRow) {
	fmt.Fprintln(w, "Fig 5c — Latency for cloning Git repositories")
	fmt.Fprintf(w, "%-10s %8s %6s %12s %12s %10s\n",
		"repo", "files", "dirs", "openafs", "nexus", "overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %6d %12s %12s %9.2fx\n",
			r.Repo, r.NumFiles, r.NumDirs, fmtDur(r.OpenAFS), fmtDur(r.Nexus), r.Overhead)
	}
	fmt.Fprintln(w)
}
