package compare

import (
	"errors"
	"strings"
	"testing"

	"nexus/internal/bench"
)

func report(metrics map[string]float64) *bench.Report {
	r := bench.NewReport("test", 1)
	for name, ns := range metrics {
		r.Add("fileio", name, bench.Metric{NsPerOp: ns})
	}
	return r
}

func TestDiffWithinToleranceIsClean(t *testing.T) {
	base := report(map[string]float64{"write_read_1MB": 1000, "write_read_2MB": 2000})
	cur := report(map[string]float64{"write_read_1MB": 1150, "write_read_2MB": 1800})

	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("15%% slowdown flagged as regression at 20%% tolerance: %+v", deltas)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
}

func TestDiffFlagsRegressionBeyondTolerance(t *testing.T) {
	base := report(map[string]float64{"write_read_1MB": 1000})
	cur := report(map[string]float64{"write_read_1MB": 1201})

	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("20.1% slowdown not flagged at 20% tolerance")
	}
	if !deltas[0].Regressed {
		t.Fatalf("delta not marked regressed: %+v", deltas[0])
	}
}

func TestDiffExactToleranceBoundaryPasses(t *testing.T) {
	base := report(map[string]float64{"m": 1000})
	cur := report(map[string]float64{"m": 1200})
	_, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("exactly +20% should pass at 20% tolerance (strict >)")
	}
}

func TestDiffMissingMetricRegresses(t *testing.T) {
	base := report(map[string]float64{"write_read_1MB": 1000, "write_read_2MB": 2000})
	cur := report(map[string]float64{"write_read_1MB": 1000})

	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("dropped baseline metric not flagged")
	}
	var missing *Delta
	for i := range deltas {
		if deltas[i].Metric == "write_read_2MB" {
			missing = &deltas[i]
		}
	}
	if missing == nil || !missing.Missing || !missing.Regressed {
		t.Fatalf("missing metric delta wrong: %+v", missing)
	}
}

// TestDiffGatedMetricWithoutBaselineIsTypedError is the regression
// test for the silent zero-ratio pass: a gated metric only the current
// report carries used to produce no delta row and a clean exit,
// leaving the new metric un-gated. It must now fail with
// *MissingBaselineError naming the metric.
func TestDiffGatedMetricWithoutBaselineIsTypedError(t *testing.T) {
	base := report(map[string]float64{"a": 100})
	cur := report(map[string]float64{"a": 100, "b": 999999})
	_, _, err := Diff(base, cur, 0.2)
	var missing *MissingBaselineError
	if !errors.As(err, &missing) {
		t.Fatalf("Diff error = %v, want *MissingBaselineError", err)
	}
	if missing.Experiment != "fileio" || missing.Metric != "b" {
		t.Fatalf("error names %s/%s, want fileio/b", missing.Experiment, missing.Metric)
	}
	if !strings.Contains(missing.Error(), "fileio/b") {
		t.Fatalf("error text does not name the metric: %v", missing)
	}
}

// TestDiffSeveralMissingBaselinesDeterministic pins which metric the
// typed error names when several are missing: the lexicographically
// first, so CI failures are stable across runs (map iteration order
// must not leak through).
func TestDiffSeveralMissingBaselinesDeterministic(t *testing.T) {
	base := report(map[string]float64{"a": 100})
	cur := report(map[string]float64{"a": 100, "z": 1, "b": 1, "m": 1})
	for i := 0; i < 10; i++ {
		_, _, err := Diff(base, cur, 0.2)
		var missing *MissingBaselineError
		if !errors.As(err, &missing) {
			t.Fatalf("Diff error = %v, want *MissingBaselineError", err)
		}
		if missing.Metric != "b" {
			t.Fatalf("run %d named %s, want the lexicographically first (b)", i, missing.Metric)
		}
	}
}

// TestDiffInformationalMetricNeedsNoBaseline: informational metrics
// (dedup ratios, upload costs) never gate, so they may appear without
// a baseline entry and may regress arbitrarily without failing.
func TestDiffInformationalMetricNeedsNoBaseline(t *testing.T) {
	base := bench.NewReport("base", 1)
	base.Add("fileio", "a", bench.Metric{NsPerOp: 100})
	cur := bench.NewReport("cur", 1)
	cur.Add("fileio", "a", bench.Metric{NsPerOp: 100})
	cur.Add("dedup", "repeated_edit_cdc", bench.Metric{
		NsPerOp: 5000, DedupRatio: 9.5, UploadedBytesPerOp: 6000, Informational: true,
	})
	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatalf("informational metric without baseline: %v", err)
	}
	if regressed {
		t.Fatal("informational-only addition flagged as regression")
	}
	// The new coverage still gets a (non-gating) row so its dedup
	// figures show up in the diff output.
	if len(deltas) != 2 {
		t.Fatalf("want gated row + informational new-coverage row, got %d deltas", len(deltas))
	}
	for _, d := range deltas {
		if d.Experiment != "dedup" {
			continue
		}
		if !d.Informational || d.Regressed || d.Missing {
			t.Fatalf("informational new-coverage row wrong: %+v", d)
		}
		if d.DedupRatioCur != 9.5 {
			t.Fatalf("dedup ratio not surfaced on new-coverage row: %+v", d)
		}
	}

	// Present in both but slower and marked informational: shown, not
	// gated.
	base.Add("dedup", "repeated_edit_cdc", bench.Metric{NsPerOp: 10, Informational: true})
	deltas, regressed, err = Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("informational slowdown gated")
	}
	var dd *Delta
	for i := range deltas {
		if deltas[i].Experiment == "dedup" {
			dd = &deltas[i]
		}
	}
	if dd == nil || !dd.Informational || dd.Regressed {
		t.Fatalf("dedup delta wrong: %+v", dd)
	}
	if dd.DedupRatioCur != 9.5 {
		t.Fatalf("dedup ratio not surfaced: %+v", dd)
	}
}

func TestDiffSchemaMismatch(t *testing.T) {
	base := report(map[string]float64{"a": 1})
	cur := report(map[string]float64{"a": 1})
	cur.Schema = bench.ReportSchema + 1
	if _, _, err := Diff(base, cur, 0.2); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

func TestFormatMarksRegressions(t *testing.T) {
	base := report(map[string]float64{"fast": 1000, "slow": 1000, "gone": 1000})
	cur := report(map[string]float64{"fast": 900, "slow": 5000})
	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("expected regressions")
	}
	var sb strings.Builder
	Format(&sb, deltas, Options{Tolerance: 0.2})
	out := sb.String()
	if !strings.Contains(out, "REGRESSED") {
		t.Fatalf("no REGRESSED marker in output:\n%s", out)
	}
	if !strings.Contains(out, "missing") {
		t.Fatalf("no missing marker in output:\n%s", out)
	}
}

// metricReport builds a single-experiment report with full Metric
// values, for exercising the allocs/op and MB/s gates.
func metricReport(metrics map[string]bench.Metric) *bench.Report {
	r := bench.NewReport("test", 1)
	for name, m := range metrics {
		r.Add("crypto", name, m)
	}
	return r
}

func TestDiffGatesAllocsRise(t *testing.T) {
	base := metricReport(map[string]bench.Metric{"encrypt_w4": {NsPerOp: 1000, AllocsPerOp: 8}})
	cur := metricReport(map[string]bench.Metric{"encrypt_w4": {NsPerOp: 1000, AllocsPerOp: 9}})

	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !deltas[0].AllocsRegressed {
		t.Fatalf("8→9 allocs/op (+12.5%%) not gated at +10%%: %+v", deltas[0])
	}
	if deltas[0].NsRegressed || deltas[0].MBsRegressed {
		t.Fatalf("unrelated gates fired: %+v", deltas[0])
	}

	// Within the band: 100 → 110 is exactly +10%, strict > passes it.
	base = metricReport(map[string]bench.Metric{"m": {NsPerOp: 1000, AllocsPerOp: 100}})
	cur = metricReport(map[string]bench.Metric{"m": {NsPerOp: 1000, AllocsPerOp: 110}})
	if _, regressed, _ := Diff(base, cur, 0.2); regressed {
		t.Fatal("exactly +10% allocs/op should pass (strict >)")
	}
}

func TestDiffGatesMBsDrop(t *testing.T) {
	base := metricReport(map[string]bench.Metric{"encrypt_w4": {NsPerOp: 1000, MBPerSec: 400}})
	cur := metricReport(map[string]bench.Metric{"encrypt_w4": {NsPerOp: 1000, MBPerSec: 299}})

	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !deltas[0].MBsRegressed {
		t.Fatalf("400→299 MB/s (−25.25%%) not gated at −25%%: %+v", deltas[0])
	}

	// Exactly −25% passes (strict <).
	cur = metricReport(map[string]bench.Metric{"encrypt_w4": {NsPerOp: 1000, MBPerSec: 300}})
	if _, regressed, _ := Diff(base, cur, 0.2); regressed {
		t.Fatal("exactly -25% MB/s should pass (strict <)")
	}
}

func TestDiffSkipsGatesWhenEitherSideLacksFigure(t *testing.T) {
	// Baseline predates allocs/MBs instrumentation: only ns/op stamped.
	base := metricReport(map[string]bench.Metric{"m": {NsPerOp: 1000}})
	cur := metricReport(map[string]bench.Metric{"m": {NsPerOp: 1000, AllocsPerOp: 999, MBPerSec: 1}})
	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("gates fired with no baseline figure: %+v", deltas[0])
	}

	// And the reverse: current run didn't measure them.
	base = metricReport(map[string]bench.Metric{"m": {NsPerOp: 1000, AllocsPerOp: 8, MBPerSec: 400}})
	cur = metricReport(map[string]bench.Metric{"m": {NsPerOp: 1000}})
	if _, regressed, err := Diff(base, cur, 0.2); err != nil || regressed {
		t.Fatalf("gates fired with no current figure (regressed=%v, err=%v)", regressed, err)
	}
}

func TestDiffRefusesEnvMismatch(t *testing.T) {
	base := report(map[string]float64{"m": 1000})
	cur := report(map[string]float64{"m": 1000})
	base.CPUs = 4
	cur.CPUs = 1
	if _, _, err := Diff(base, cur, 0.2); err == nil || !strings.Contains(err.Error(), "cpus") {
		t.Fatalf("cpu-mismatched reports not refused: %v", err)
	}

	// -allow-env-mismatch overrides.
	if _, _, err := DiffOpts(base, cur, Options{Tolerance: 0.2, AllowEnvMismatch: true}); err != nil {
		t.Fatalf("AllowEnvMismatch did not override: %v", err)
	}

	// goarch mismatch refused too.
	base.CPUs = cur.CPUs
	cur.GOARCH = base.GOARCH + "-other"
	if _, _, err := Diff(base, cur, 0.2); err == nil || !strings.Contains(err.Error(), "architecture") {
		t.Fatalf("goarch-mismatched reports not refused: %v", err)
	}

	// Legacy reports without the stamps still diff (zero/empty skips).
	base = report(map[string]float64{"m": 1000})
	cur = report(map[string]float64{"m": 1000})
	base.CPUs, base.GOARCH = 0, ""
	if _, _, err := Diff(base, cur, 0.2); err != nil {
		t.Fatalf("legacy report without env stamps refused: %v", err)
	}
}

func TestDiffRejectsNegativeTolerances(t *testing.T) {
	base := report(map[string]float64{"m": 1})
	cur := report(map[string]float64{"m": 1})
	for _, opts := range []Options{
		{Tolerance: -0.1},
		{AllocsTolerance: -0.1},
		{MBsTolerance: -0.1},
	} {
		if _, _, err := DiffOpts(base, cur, opts); err == nil {
			t.Fatalf("negative tolerance accepted: %+v", opts)
		}
	}
}

func speedupReport(cpus int, w1, w4 float64) *bench.Report {
	r := bench.NewReport("test", 1)
	r.CPUs = cpus
	r.Add("crypto", "encrypt_w1", bench.Metric{NsPerOp: 100, MBPerSec: w1})
	r.Add("crypto", "encrypt_w4", bench.Metric{NsPerOp: 100, MBPerSec: w4})
	return r
}

func TestCheckSpeedup(t *testing.T) {
	// Scaling fine: 2x at width 4 on a 4-cpu machine.
	checked, err := CheckSpeedup(speedupReport(4, 100, 200), 1.5)
	if err != nil || !checked {
		t.Fatalf("2x speedup failed the 1.5x gate (checked=%v, err=%v)", checked, err)
	}

	// Not scaling: 1.2x at width 4.
	checked, err = CheckSpeedup(speedupReport(4, 100, 120), 1.5)
	if err == nil || !checked {
		t.Fatalf("1.2x speedup passed the 1.5x gate (checked=%v, err=%v)", checked, err)
	}
	if !strings.Contains(err.Error(), "encrypt_w4") {
		t.Fatalf("failure does not name the metric: %v", err)
	}

	// Skipped on small machines, even when the figures would fail.
	checked, err = CheckSpeedup(speedupReport(1, 100, 100), 1.5)
	if err != nil || checked {
		t.Fatalf("speedup gate not skipped on 1 cpu (checked=%v, err=%v)", checked, err)
	}

	// A qualifying machine with no crypto pairs is an error, not a
	// silent pass — otherwise dropping the experiment un-guards it.
	empty := bench.NewReport("test", 1)
	empty.CPUs = 4
	if _, err := CheckSpeedup(empty, 1.5); err == nil {
		t.Fatal("report without _w1/_w4 pairs passed the speedup gate")
	}

	if _, err := CheckSpeedup(speedupReport(4, 100, 200), 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestDiffProofBytesRatioIsInformational(t *testing.T) {
	mk := func(ns, proofBytes float64) *bench.Report {
		r := bench.NewReport("test", 1)
		r.Add("freshness_scale", "merkle_1000_objects", bench.Metric{
			NsPerOp:         ns,
			ProofBytesPerOp: proofBytes,
		})
		return r
	}
	// Proof bytes triple (a geometry change) while ns/op holds: the
	// ratio is reported but never gates.
	deltas, regressed, err := Diff(mk(1000, 400), mk(1000, 1200), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("proof-bytes growth gated the diff: %+v", deltas)
	}
	if got := deltas[0].ProofBytesRatio; got < 2.99 || got > 3.01 {
		t.Fatalf("ProofBytesRatio = %v, want 3.0", got)
	}
	var sb strings.Builder
	Format(&sb, deltas, Options{Tolerance: 0.2})
	if !strings.Contains(sb.String(), "proof B/op 3.00x") {
		t.Fatalf("format missing informational proof-bytes tail:\n%s", sb.String())
	}
	// Absent on either side: ratio stays zero, nothing rendered.
	deltas, _, err = Diff(mk(1000, 0), mk(1000, 1200), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].ProofBytesRatio != 0 {
		t.Fatalf("ProofBytesRatio computed with missing baseline figure: %+v", deltas[0])
	}
}
