package compare

import (
	"strings"
	"testing"

	"nexus/internal/bench"
)

func report(metrics map[string]float64) *bench.Report {
	r := bench.NewReport("test", 1)
	for name, ns := range metrics {
		r.Add("fileio", name, bench.Metric{NsPerOp: ns})
	}
	return r
}

func TestDiffWithinToleranceIsClean(t *testing.T) {
	base := report(map[string]float64{"write_read_1MB": 1000, "write_read_2MB": 2000})
	cur := report(map[string]float64{"write_read_1MB": 1150, "write_read_2MB": 1800})

	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("15%% slowdown flagged as regression at 20%% tolerance: %+v", deltas)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
}

func TestDiffFlagsRegressionBeyondTolerance(t *testing.T) {
	base := report(map[string]float64{"write_read_1MB": 1000})
	cur := report(map[string]float64{"write_read_1MB": 1201})

	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("20.1% slowdown not flagged at 20% tolerance")
	}
	if !deltas[0].Regressed {
		t.Fatalf("delta not marked regressed: %+v", deltas[0])
	}
}

func TestDiffExactToleranceBoundaryPasses(t *testing.T) {
	base := report(map[string]float64{"m": 1000})
	cur := report(map[string]float64{"m": 1200})
	_, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("exactly +20% should pass at 20% tolerance (strict >)")
	}
}

func TestDiffMissingMetricRegresses(t *testing.T) {
	base := report(map[string]float64{"write_read_1MB": 1000, "write_read_2MB": 2000})
	cur := report(map[string]float64{"write_read_1MB": 1000})

	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("dropped baseline metric not flagged")
	}
	var missing *Delta
	for i := range deltas {
		if deltas[i].Metric == "write_read_2MB" {
			missing = &deltas[i]
		}
	}
	if missing == nil || !missing.Missing || !missing.Regressed {
		t.Fatalf("missing metric delta wrong: %+v", missing)
	}
}

func TestDiffNewMetricIsNotRegression(t *testing.T) {
	base := report(map[string]float64{"a": 100})
	cur := report(map[string]float64{"a": 100, "b": 999999})
	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("metric present only in current flagged as regression")
	}
	if len(deltas) != 1 {
		t.Fatalf("new metrics should not produce deltas, got %d", len(deltas))
	}
}

func TestDiffSchemaMismatch(t *testing.T) {
	base := report(map[string]float64{"a": 1})
	cur := report(map[string]float64{"a": 1})
	cur.Schema = bench.ReportSchema + 1
	if _, _, err := Diff(base, cur, 0.2); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

func TestFormatMarksRegressions(t *testing.T) {
	base := report(map[string]float64{"fast": 1000, "slow": 1000, "gone": 1000})
	cur := report(map[string]float64{"fast": 900, "slow": 5000})
	deltas, regressed, err := Diff(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("expected regressions")
	}
	var sb strings.Builder
	Format(&sb, deltas, 0.2)
	out := sb.String()
	if !strings.Contains(out, "REGRESSED") {
		t.Fatalf("no REGRESSED marker in output:\n%s", out)
	}
	if !strings.Contains(out, "missing") {
		t.Fatalf("no missing marker in output:\n%s", out)
	}
}
