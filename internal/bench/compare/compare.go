// Package compare diffs two machine-readable bench reports
// (BENCH_<rev>.json) and decides whether the newer one regressed. It is
// the library behind cmd/nexus-benchdiff and the CI perf gate.
//
// Three metrics are gated: ns/op (may not rise beyond Tolerance),
// allocs/op (may not rise beyond AllocsTolerance — the zero-copy chunk
// pipeline's allocation budget is a correctness-adjacent invariant, so
// CI fails when it erodes), and MB/s (may not drop beyond
// MBsTolerance). Tail latencies and flush/wrap counts remain
// informational. Reports from different machines are refused outright
// unless explicitly overridden: parallel chunk-crypto figures are
// meaningless across differing core counts or architectures.
package compare

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"nexus/internal/bench"
)

// Default per-metric tolerances used by Diff and cmd/nexus-benchdiff.
const (
	// DefaultAllocsTolerance is the allowed fractional rise in
	// allocs/op (+10%). Allocation counts are near-deterministic for a
	// given toolchain, so the band is deliberately tight.
	DefaultAllocsTolerance = 0.10
	// DefaultMBsTolerance is the allowed fractional drop in MB/s
	// (−25%). Throughput is noisier than allocation counts, so the
	// band is wider.
	DefaultMBsTolerance = 0.25
)

// speedupMinCPUs is the core count below which CheckSpeedup is
// meaningless and skips: with fewer than 4 schedulable CPUs the w4
// workers time-slice a smaller machine and no scaling is expected.
const speedupMinCPUs = 4

// Options configures a comparison. The zero value gates nothing but
// ns/op Missing checks; use Diff (or fill the fields) for the standard
// CI gate.
type Options struct {
	// Tolerance is the allowed fractional ns/op slowdown (0.2 = +20%):
	// a metric regresses when cur > base*(1+Tolerance).
	Tolerance float64
	// AllocsTolerance is the allowed fractional rise in allocs/op. The
	// gate is skipped for metrics where either report lacks the figure
	// (zero on either side).
	AllocsTolerance float64
	// MBsTolerance is the allowed fractional drop in MB/s: a metric
	// regresses when cur < base*(1−MBsTolerance). Skipped when either
	// side lacks the figure.
	MBsTolerance float64
	// AllowEnvMismatch skips the CheckEnv refusal for reports from
	// differing machines. The numbers are then printed but should be
	// read as apples-to-oranges.
	AllowEnvMismatch bool
}

// Delta is the comparison of one metric between two reports.
type Delta struct {
	Experiment string
	Metric     string
	// BaseNs and CurNs are ns/op in the baseline and current reports.
	BaseNs float64
	CurNs  float64
	// Ratio is CurNs/BaseNs (>1 means slower). Zero when Missing.
	Ratio float64
	// Missing marks a baseline metric absent from the current report —
	// treated as a regression, since silently dropping a measurement
	// would otherwise un-guard it.
	Missing bool
	// Regressed aggregates every gated failure: Missing, NsRegressed,
	// AllocsRegressed, or MBsRegressed.
	Regressed bool
	// NsRegressed is set when CurNs exceeds BaseNs by more than
	// Options.Tolerance.
	NsRegressed bool
	// BaseAllocs/CurAllocs/AllocsRatio compare allocs/op when both
	// reports carry the figure; AllocsRatio is zero otherwise.
	// AllocsRegressed is set when the rise exceeds
	// Options.AllocsTolerance.
	BaseAllocs      float64
	CurAllocs       float64
	AllocsRatio     float64
	AllocsRegressed bool
	// BaseMBs/CurMBs/MBsRatio compare MB/s when both reports carry the
	// figure (ratio >1 means faster). MBsRegressed is set when the
	// drop exceeds Options.MBsTolerance.
	BaseMBs      float64
	CurMBs       float64
	MBsRatio     float64
	MBsRegressed bool
	// P95Ratio and P99Ratio compare tail latencies when both reports
	// carry histogram percentiles for the metric; zero otherwise. Tails
	// are informational — too noisy to gate on — so they never set
	// Regressed.
	P95Ratio float64
	P99Ratio float64
	// FlushRatio compares metadata flushes per operation when both
	// reports carry the figure; zero otherwise. Informational only —
	// flush counts move by design when batching policy changes — so it
	// never sets Regressed.
	FlushRatio float64
	// WrapRatio compares key wraps per revocation (the membership
	// sweep) when both reports carry the figure; zero otherwise.
	// Informational only, like FlushRatio: wrap counts move by design
	// when the key-tree geometry changes.
	WrapRatio float64
	// ProofBytesRatio compares freshness evidence bytes per metadata
	// load (the freshness_scale sweep) when both reports carry the
	// figure; zero otherwise. Informational only, like WrapRatio: proof
	// sizes move by design when the namespace tree's geometry changes.
	ProofBytesRatio float64
	// DedupRatioCur and UploadedBytesRatio surface the dedup
	// experiment's figures: the current run's dedup ratio, and
	// cur/base uploaded bytes per op when both reports carry it.
	// Informational, like the tails.
	DedupRatioCur      float64
	UploadedBytesRatio float64
	// Informational marks a metric that never gates: its row is shown
	// for visibility but no flag on it sets Regressed, and it needs no
	// baseline entry.
	Informational bool
}

// MissingBaselineError reports a gated metric the current run carries
// that the baseline report lacks entirely. Diffing such a pair used to
// pass silently — the metric produced no delta row and a zero ratio —
// which un-gated it exactly when the gate was supposed to start
// applying. Informational metrics (Metric.Informational) are exempt:
// they never gate, so they may appear without a baseline entry.
type MissingBaselineError struct {
	Experiment string
	Metric     string
}

func (e *MissingBaselineError) Error() string {
	return fmt.Sprintf("compare: baseline has no entry for gated metric %s/%s reported by the current run — refusing to pass it ungated; regenerate the baseline (make bench-baseline) or mark the metric informational",
		e.Experiment, e.Metric)
}

// CheckEnv reports whether two reports were produced on comparable
// machines. CPU counts and architectures must match when both sides
// carry them (older reports without the stamps are let through so the
// baseline can be upgraded incrementally).
func CheckEnv(baseline, current *bench.Report) error {
	if baseline.CPUs != 0 && current.CPUs != 0 && baseline.CPUs != current.CPUs {
		return fmt.Errorf("compare: reports are not comparable: baseline ran with %d cpus, current with %d — parallel chunk-crypto and MB/s figures shift with core count, so this diff would gate on noise; regenerate the baseline on this machine (or pass -allow-env-mismatch to diff anyway)",
			baseline.CPUs, current.CPUs)
	}
	if baseline.GOARCH != "" && current.GOARCH != "" && baseline.GOARCH != current.GOARCH {
		return fmt.Errorf("compare: reports are not comparable: baseline is %s, current is %s — allocation counts and AES throughput are architecture-specific; regenerate the baseline for this architecture (or pass -allow-env-mismatch to diff anyway)",
			baseline.GOARCH, current.GOARCH)
	}
	return nil
}

// Diff compares current against baseline with the standard CI gate:
// the given ns/op tolerance plus the default allocs/op and MB/s
// tolerances, refusing environment-mismatched reports. Metrics that
// exist only in current are new coverage, not regressions. Returns
// every delta (sorted, regressions included) and whether any metric
// regressed.
func Diff(baseline, current *bench.Report, tolerance float64) ([]Delta, bool, error) {
	return DiffOpts(baseline, current, Options{
		Tolerance:       tolerance,
		AllocsTolerance: DefaultAllocsTolerance,
		MBsTolerance:    DefaultMBsTolerance,
	})
}

// DiffOpts is Diff with every knob exposed.
func DiffOpts(baseline, current *bench.Report, opts Options) ([]Delta, bool, error) {
	if baseline.Schema != current.Schema {
		return nil, false, fmt.Errorf("compare: schema mismatch: baseline %d vs current %d", baseline.Schema, current.Schema)
	}
	if opts.Tolerance < 0 || opts.AllocsTolerance < 0 || opts.MBsTolerance < 0 {
		return nil, false, fmt.Errorf("compare: negative tolerance %+v", opts)
	}
	if !opts.AllowEnvMismatch {
		if err := CheckEnv(baseline, current); err != nil {
			return nil, false, err
		}
	}

	var deltas []Delta
	regressed := false
	for expName, baseExp := range baseline.Experiments {
		curExp := current.Experiments[expName]
		for name, base := range baseExp {
			d := Delta{Experiment: expName, Metric: name, BaseNs: base.NsPerOp}
			cur, ok := curExp[name]
			d.Informational = base.Informational || (ok && cur.Informational)
			if !ok {
				d.Missing = true
			} else {
				d.CurNs = cur.NsPerOp
				if base.NsPerOp > 0 {
					d.Ratio = cur.NsPerOp / base.NsPerOp
				}
				d.NsRegressed = cur.NsPerOp > base.NsPerOp*(1+opts.Tolerance)
				if base.AllocsPerOp > 0 && cur.AllocsPerOp > 0 {
					d.BaseAllocs = base.AllocsPerOp
					d.CurAllocs = cur.AllocsPerOp
					d.AllocsRatio = cur.AllocsPerOp / base.AllocsPerOp
					d.AllocsRegressed = cur.AllocsPerOp > base.AllocsPerOp*(1+opts.AllocsTolerance)
				}
				if base.MBPerSec > 0 && cur.MBPerSec > 0 {
					d.BaseMBs = base.MBPerSec
					d.CurMBs = cur.MBPerSec
					d.MBsRatio = cur.MBPerSec / base.MBPerSec
					d.MBsRegressed = cur.MBPerSec < base.MBPerSec*(1-opts.MBsTolerance)
				}
				if base.P95Ns > 0 && cur.P95Ns > 0 {
					d.P95Ratio = cur.P95Ns / base.P95Ns
				}
				if base.P99Ns > 0 && cur.P99Ns > 0 {
					d.P99Ratio = cur.P99Ns / base.P99Ns
				}
				if base.FlushesPerOp > 0 && cur.FlushesPerOp > 0 {
					d.FlushRatio = cur.FlushesPerOp / base.FlushesPerOp
				}
				if base.WrapsPerOp > 0 && cur.WrapsPerOp > 0 {
					d.WrapRatio = cur.WrapsPerOp / base.WrapsPerOp
				}
				if base.ProofBytesPerOp > 0 && cur.ProofBytesPerOp > 0 {
					d.ProofBytesRatio = cur.ProofBytesPerOp / base.ProofBytesPerOp
				}
				d.DedupRatioCur = cur.DedupRatio
				if base.UploadedBytesPerOp > 0 && cur.UploadedBytesPerOp > 0 {
					d.UploadedBytesRatio = cur.UploadedBytesPerOp / base.UploadedBytesPerOp
				}
			}
			d.Regressed = !d.Informational &&
				(d.Missing || d.NsRegressed || d.AllocsRegressed || d.MBsRegressed)
			if d.Regressed {
				regressed = true
			}
			deltas = append(deltas, d)
		}
	}
	// The reverse direction: a gated metric the current run reports
	// with no baseline entry at all. Producing no row (and a zero
	// ratio) here would pass the run while leaving the new metric
	// un-gated — fail loudly instead. Informational metrics are new
	// coverage: they ride along without a baseline, but still get a
	// row so their figures (dedup ratio, upload cost) are visible in
	// the diff output.
	var missingBase *MissingBaselineError
	for expName, curExp := range current.Experiments {
		baseExp := baseline.Experiments[expName]
		for name, cur := range curExp {
			if _, ok := baseExp[name]; ok {
				continue
			}
			if cur.Informational {
				deltas = append(deltas, Delta{
					Experiment: expName, Metric: name, CurNs: cur.NsPerOp,
					Informational: true, DedupRatioCur: cur.DedupRatio,
				})
				continue
			}
			// Deterministic choice when several are missing: report the
			// lexicographically first.
			if missingBase == nil || expName < missingBase.Experiment ||
				(expName == missingBase.Experiment && name < missingBase.Metric) {
				missingBase = &MissingBaselineError{Experiment: expName, Metric: name}
			}
		}
	}
	if missingBase != nil {
		return nil, false, missingBase
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Experiment != deltas[j].Experiment {
			return deltas[i].Experiment < deltas[j].Experiment
		}
		return deltas[i].Metric < deltas[j].Metric
	})
	return deltas, regressed, nil
}

// CheckSpeedup enforces that the current report's parallel chunk
// crypto actually scales: for every experiment carrying MB/s figures
// for both a "<op>_w1" metric and its "<op>_w4" sibling, the w4 figure
// must be at least min× the w1 figure. Reports from machines with
// fewer than 4 CPUs are skipped (checked=false): time-slicing four
// workers on one core proves nothing about scaling. On a qualifying
// machine the gate refuses a report with no such metric pairs — a
// silently absent crypto experiment would otherwise un-guard the
// speedup the same way a Missing metric would.
func CheckSpeedup(r *bench.Report, min float64) (checked bool, err error) {
	if min <= 0 {
		return false, fmt.Errorf("compare: speedup threshold must be positive, got %v", min)
	}
	if r.CPUs < speedupMinCPUs {
		return false, nil
	}
	pairs := 0
	var failures []string
	for expName, exp := range r.Experiments {
		for name, w1 := range exp {
			base, found := strings.CutSuffix(name, "_w1")
			if !found || w1.MBPerSec <= 0 {
				continue
			}
			w4, ok := exp[base+"_w4"]
			if !ok || w4.MBPerSec <= 0 {
				continue
			}
			pairs++
			if w4.MBPerSec < min*w1.MBPerSec {
				failures = append(failures, fmt.Sprintf("%s/%s_w4: %.1f MB/s is %.2fx of w1's %.1f MB/s (want ≥ %.2fx)",
					expName, base, w4.MBPerSec, w4.MBPerSec/w1.MBPerSec, w1.MBPerSec, min))
			}
		}
	}
	if pairs == 0 {
		return false, fmt.Errorf("compare: speedup gate found no _w1/_w4 MB/s metric pairs in the report; run the crypto experiment (nexus-bench -exp crypto -json)")
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return true, fmt.Errorf("compare: parallel chunk crypto is not scaling on this %d-cpu machine:\n  %s", r.CPUs, strings.Join(failures, "\n  "))
	}
	return true, nil
}

// Format renders the diff as a table, flagging regressions per gated
// metric. Informational ratios (tails, flushes, wraps) ride along on
// the right.
func Format(w io.Writer, deltas []Delta, opts Options) {
	fmt.Fprintf(w, "%-42s %14s %14s %8s %8s %8s\n", "experiment/metric", "base ns/op", "cur ns/op", "ratio", "allocs", "MB/s")
	for _, d := range deltas {
		name := d.Experiment + "/" + d.Metric
		if d.Missing {
			flag := "  REGRESSED (missing)"
			if d.Informational {
				flag = "  (informational, absent from current)"
			}
			fmt.Fprintf(w, "%-42s %14.0f %14s %8s %8s %8s%s\n", name, d.BaseNs, "-", "-", "-", "-", flag)
			continue
		}
		var why []string
		if d.NsRegressed {
			why = append(why, fmt.Sprintf("ns/op > +%.0f%%", opts.Tolerance*100))
		}
		if d.AllocsRegressed {
			why = append(why, fmt.Sprintf("allocs/op > +%.0f%%", opts.AllocsTolerance*100))
		}
		if d.MBsRegressed {
			why = append(why, fmt.Sprintf("MB/s < -%.0f%%", opts.MBsTolerance*100))
		}
		flag := ""
		if d.Informational {
			flag = "  (informational)"
		} else if len(why) > 0 {
			flag = "  REGRESSED (" + strings.Join(why, ", ") + ")"
		}
		allocs, mbs := "-", "-"
		if d.AllocsRatio > 0 {
			allocs = fmt.Sprintf("%.2fx", d.AllocsRatio)
		}
		if d.MBsRatio > 0 {
			mbs = fmt.Sprintf("%.2fx", d.MBsRatio)
		}
		tails := ""
		if d.P95Ratio > 0 {
			tails = fmt.Sprintf("  p95 %.2fx", d.P95Ratio)
		}
		if d.P99Ratio > 0 {
			tails += fmt.Sprintf("  p99 %.2fx", d.P99Ratio)
		}
		if d.FlushRatio > 0 {
			tails += fmt.Sprintf("  flushes/op %.2fx", d.FlushRatio)
		}
		if d.WrapRatio > 0 {
			tails += fmt.Sprintf("  wraps/op %.2fx", d.WrapRatio)
		}
		if d.ProofBytesRatio > 0 {
			tails += fmt.Sprintf("  proof B/op %.2fx", d.ProofBytesRatio)
		}
		if d.DedupRatioCur > 0 {
			tails += fmt.Sprintf("  dedup %.2fx", d.DedupRatioCur)
		}
		if d.UploadedBytesRatio > 0 {
			tails += fmt.Sprintf("  upload B/op %.2fx", d.UploadedBytesRatio)
		}
		baseCol := fmt.Sprintf("%14.0f", d.BaseNs)
		ratioCol := fmt.Sprintf("%7.2fx", d.Ratio)
		if d.Informational && d.BaseNs == 0 {
			// New informational coverage with no baseline entry.
			baseCol, ratioCol = fmt.Sprintf("%14s", "-"), fmt.Sprintf("%8s", "-")
			flag = "  (informational, new)"
		}
		fmt.Fprintf(w, "%-42s %s %14.0f %s %8s %8s%s%s\n", name, baseCol, d.CurNs, ratioCol, allocs, mbs, tails, flag)
	}
}
