// Package compare diffs two machine-readable bench reports
// (BENCH_<rev>.json) and decides whether the newer one regressed. It is
// the library behind cmd/nexus-benchdiff and the CI perf gate.
package compare

import (
	"fmt"
	"io"
	"sort"

	"nexus/internal/bench"
)

// Delta is the comparison of one metric between two reports.
type Delta struct {
	Experiment string
	Metric     string
	// BaseNs and CurNs are ns/op in the baseline and current reports.
	BaseNs float64
	CurNs  float64
	// Ratio is CurNs/BaseNs (>1 means slower). Zero when Missing.
	Ratio float64
	// Missing marks a baseline metric absent from the current report —
	// treated as a regression, since silently dropping a measurement
	// would otherwise un-guard it.
	Missing bool
	// Regressed is set when CurNs exceeds BaseNs by more than the
	// tolerance, or when Missing.
	Regressed bool
	// P95Ratio and P99Ratio compare tail latencies when both reports
	// carry histogram percentiles for the metric; zero otherwise. Tails
	// are informational — too noisy to gate on — so they never set
	// Regressed.
	P95Ratio float64
	P99Ratio float64
	// FlushRatio compares metadata flushes per operation when both
	// reports carry the figure; zero otherwise. Informational only —
	// flush counts move by design when batching policy changes — so it
	// never sets Regressed.
	FlushRatio float64
	// WrapRatio compares key wraps per revocation (the membership
	// sweep) when both reports carry the figure; zero otherwise.
	// Informational only, like FlushRatio: wrap counts move by design
	// when the key-tree geometry changes.
	WrapRatio float64
}

// Diff compares current against baseline metric by metric. tolerance is
// the allowed fractional slowdown (0.2 = 20%): a metric regresses when
// cur > base*(1+tolerance). Metrics that exist only in current are new
// coverage, not regressions. Returns every delta (sorted, regressions
// included) and whether any metric regressed.
func Diff(baseline, current *bench.Report, tolerance float64) ([]Delta, bool, error) {
	if baseline.Schema != current.Schema {
		return nil, false, fmt.Errorf("compare: schema mismatch: baseline %d vs current %d", baseline.Schema, current.Schema)
	}
	if tolerance < 0 {
		return nil, false, fmt.Errorf("compare: negative tolerance %v", tolerance)
	}

	var deltas []Delta
	regressed := false
	for expName, baseExp := range baseline.Experiments {
		curExp := current.Experiments[expName]
		for name, base := range baseExp {
			d := Delta{Experiment: expName, Metric: name, BaseNs: base.NsPerOp}
			cur, ok := curExp[name]
			if !ok {
				d.Missing = true
				d.Regressed = true
			} else {
				d.CurNs = cur.NsPerOp
				if base.NsPerOp > 0 {
					d.Ratio = cur.NsPerOp / base.NsPerOp
				}
				d.Regressed = cur.NsPerOp > base.NsPerOp*(1+tolerance)
				if base.P95Ns > 0 && cur.P95Ns > 0 {
					d.P95Ratio = cur.P95Ns / base.P95Ns
				}
				if base.P99Ns > 0 && cur.P99Ns > 0 {
					d.P99Ratio = cur.P99Ns / base.P99Ns
				}
				if base.FlushesPerOp > 0 && cur.FlushesPerOp > 0 {
					d.FlushRatio = cur.FlushesPerOp / base.FlushesPerOp
				}
				if base.WrapsPerOp > 0 && cur.WrapsPerOp > 0 {
					d.WrapRatio = cur.WrapsPerOp / base.WrapsPerOp
				}
			}
			if d.Regressed {
				regressed = true
			}
			deltas = append(deltas, d)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Experiment != deltas[j].Experiment {
			return deltas[i].Experiment < deltas[j].Experiment
		}
		return deltas[i].Metric < deltas[j].Metric
	})
	return deltas, regressed, nil
}

// Format renders the diff as a table, flagging regressions.
func Format(w io.Writer, deltas []Delta, tolerance float64) {
	fmt.Fprintf(w, "%-42s %14s %14s %8s\n", "experiment/metric", "base ns/op", "cur ns/op", "ratio")
	for _, d := range deltas {
		name := d.Experiment + "/" + d.Metric
		if d.Missing {
			fmt.Fprintf(w, "%-42s %14.0f %14s %8s  REGRESSED (missing)\n", name, d.BaseNs, "-", "-")
			continue
		}
		flag := ""
		if d.Regressed {
			flag = fmt.Sprintf("  REGRESSED (> +%.0f%%)", tolerance*100)
		}
		tails := ""
		if d.P95Ratio > 0 {
			tails = fmt.Sprintf("  p95 %.2fx", d.P95Ratio)
		}
		if d.P99Ratio > 0 {
			tails += fmt.Sprintf("  p99 %.2fx", d.P99Ratio)
		}
		if d.FlushRatio > 0 {
			tails += fmt.Sprintf("  flushes/op %.2fx", d.FlushRatio)
		}
		if d.WrapRatio > 0 {
			tails += fmt.Sprintf("  wraps/op %.2fx", d.WrapRatio)
		}
		fmt.Fprintf(w, "%-42s %14.0f %14.0f %7.2fx%s%s\n", name, d.BaseNs, d.CurNs, d.Ratio, tails, flag)
	}
}
