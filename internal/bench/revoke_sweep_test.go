package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// The membership sweep is the PR's load-bearing claim: revocation wrap
// work under the subgroup tree grows O(log n) while the flat baseline
// grows O(n). Checked here at test-friendly sizes; the full 10^3–10^6
// sweep runs via `nexus-bench -exp revoke-sweep`.
func TestMembershipSweepSublinear(t *testing.T) {
	rows, err := MembershipSweep([]int{512, 4096}, "both", 2)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]MembershipRow)
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Mode, r.Members)] = r
	}
	treeSmall, treeBig := byKey["tree/512"], byKey["tree/4096"]
	flatSmall, flatBig := byKey["flat/512"], byKey["flat/4096"]
	if treeSmall.WrapsPerOp == 0 || treeBig.WrapsPerOp == 0 {
		t.Fatalf("tree rows missing or unmetered: %+v", rows)
	}

	// 8× the members must cost far less than 8× the wraps: a fanout-8
	// tree adds about one level, so allow 2×.
	if growth := treeBig.WrapsPerOp / treeSmall.WrapsPerOp; growth > 2 {
		t.Fatalf("tree wraps grew %.2fx across 8x membership (512: %.1f, 4096: %.1f) — not sublinear",
			growth, treeSmall.WrapsPerOp, treeBig.WrapsPerOp)
	}
	if growth := treeBig.BytesPerOp / treeSmall.BytesPerOp; growth > 2 {
		t.Fatalf("tree wrap bytes grew %.2fx across 8x membership — not sublinear", growth)
	}

	// The flat baseline rotates the group secret and re-wraps every
	// survivor: wraps/op tracks n.
	if flatSmall.WrapsPerOp < 500 || flatBig.WrapsPerOp < 4000 {
		t.Fatalf("flat baseline under-metered: 512 → %.1f, 4096 → %.1f wraps/op",
			flatSmall.WrapsPerOp, flatBig.WrapsPerOp)
	}
	if ratio := flatBig.WrapsPerOp / treeBig.WrapsPerOp; ratio < 10 {
		t.Fatalf("tree (%.1f wraps/op) not clearly below flat (%.1f wraps/op) at 4096 members",
			treeBig.WrapsPerOp, flatBig.WrapsPerOp)
	}
}

func TestMembershipSweepModesAndErrors(t *testing.T) {
	rows, err := MembershipSweep([]int{256}, "tree", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Mode != "tree" {
		t.Fatalf("tree-only sweep rows = %+v", rows)
	}
	if _, err := MembershipSweep([]int{256}, "nonsense", 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := MembershipSweep([]int{2}, "tree", 1); err == nil {
		t.Fatal("degenerate size accepted")
	}

	var buf bytes.Buffer
	PrintMembership(&buf, rows)
	if !strings.Contains(buf.String(), "tree") || !strings.Contains(buf.String(), "256") {
		t.Fatalf("PrintMembership output missing rows:\n%s", buf.String())
	}

	exp := MembershipMetrics(rows)
	m, ok := exp["tree_256_users"]
	if !ok || m.WrapsPerOp == 0 || m.NsPerOp == 0 {
		t.Fatalf("MembershipMetrics = %+v", exp)
	}
}
