package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"nexus/internal/obs"
)

// ReportSchema is the version stamped into every JSON report. Bump it
// whenever the shape of Report changes incompatibly; the compare tool
// refuses to diff reports with mismatched schemas.
const ReportSchema = 1

// Metric is one measured quantity within an experiment. The percentile
// fields are populated from observability histogram snapshots; they are
// omitted (and ignored by the compare gate) when a report predates them,
// so old and new reports stay diffable under the same schema.
type Metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P95Ns       float64 `json:"p95_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	// FlushesPerOp is metadata objects written per logical operation
	// (the metadata experiment's write-back efficiency figure). It is
	// informational: the compare gate reports movement but never fails
	// on it, since flush counts shift by design when batching changes.
	FlushesPerOp float64 `json:"flushes_per_op,omitempty"`
	// WrapsPerOp and BytesPerOp are key-wrap operations and wrapped-key
	// bytes per revocation, from the membership sweep (revoke_membership
	// experiment). Informational in the compare gate, like FlushesPerOp:
	// wrap counts move by design when tree geometry changes.
	WrapsPerOp float64 `json:"wraps_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	// ProofBytesPerOp is the freshness evidence transferred per metadata
	// load, from the freshness_scale experiment: one encoded Merkle
	// proof, or the whole flat table. Informational in the compare gate —
	// proof size moves by design when tree geometry changes.
	ProofBytesPerOp float64 `json:"proof_bytes_per_op,omitempty"`
	// DedupRatio is logical bytes written over bytes actually uploaded
	// and UploadedBytesPerOp the post-dedup upload cost per operation,
	// from the dedup experiment. Both ride on informational metrics.
	DedupRatio         float64 `json:"dedup_ratio,omitempty"`
	UploadedBytesPerOp float64 `json:"uploaded_bytes_per_op,omitempty"`
	// Informational marks a metric the compare gate must never fail on
	// — and, unlike gated metrics, never demand a baseline entry for:
	// dedup ratios and upload-cost figures move by design with workload
	// content, so they ride along for visibility only.
	Informational bool `json:"informational,omitempty"`
}

// LatencyMetric converts a histogram snapshot into a Metric: the mean
// becomes ns/op and the tails ride along for percentile diffing. A
// never-recorded histogram yields the zero Metric.
func LatencyMetric(s obs.HistSnapshot) Metric {
	if s.Count == 0 {
		return Metric{}
	}
	return Metric{
		NsPerOp: float64(s.Mean()),
		P50Ns:   float64(s.P50Ns),
		P95Ns:   float64(s.P95Ns),
		P99Ns:   float64(s.P99Ns),
	}
}

// Experiment maps metric names (e.g. "write_read_1MB") to measurements.
type Experiment map[string]Metric

// Report is the machine-readable output of a nexus-bench run
// (BENCH_<rev>.json). The environment fields exist so a reader can tell
// whether two reports are comparable at all — in particular CPUs, since
// the parallel chunk-crypto results are meaningless to compare across
// different core counts.
type Report struct {
	Schema      int                   `json:"schema"`
	Rev         string                `json:"rev"`
	GoVersion   string                `json:"go_version"`
	GOOS        string                `json:"goos"`
	GOARCH      string                `json:"goarch"`
	CPUs        int                   `json:"cpus"`
	Scale       int64                 `json:"scale"`
	Experiments map[string]Experiment `json:"experiments"`
}

// NewReport stamps a report with the current toolchain and machine.
// CPUs records GOMAXPROCS, not the physical core count: it is the
// number of CPUs the measured code could actually use, so a CI leg
// pinned to GOMAXPROCS=4 on a larger runner produces reports
// comparable with a 4-cpu baseline.
func NewReport(rev string, scale int64) *Report {
	return &Report{
		Schema:      ReportSchema,
		Rev:         rev,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		Scale:       scale,
		Experiments: make(map[string]Experiment),
	}
}

// Add records one metric under the named experiment.
func (r *Report) Add(experiment, metric string, m Metric) {
	exp, ok := r.Experiments[experiment]
	if !ok {
		exp = make(Experiment)
		r.Experiments[experiment] = exp
	}
	exp[metric] = m
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path, replacing any existing file.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := r.Encode(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("bench: encode %s: %w", path, err)
	}
	return f.Close()
}

// LoadReport reads a report written by WriteFile and validates its
// schema version.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("bench: %s has schema %d, this tool understands %d", path, r.Schema, ReportSchema)
	}
	return &r, nil
}
