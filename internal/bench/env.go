// Package bench is the experiment harness that regenerates every table
// and figure of the NEXUS evaluation (DSN'19 §VII).
//
// An Env stands up the paper's testbed in-process: one AFS-like file
// server, and two clients of it — a NEXUS stack (simulated-SGX enclave,
// encrypted metadata, caching AFS client) and an unmodified baseline
// (plain files over the same AFS client). Each experiment runs the same
// workload over both and reports latencies in the paper's format,
// including the Metadata-I/O and Enclave-runtime breakdowns.
package bench

import (
	"fmt"
	"net"
	"time"

	"nexus"
	"nexus/internal/afs"
	"nexus/internal/backend"
	"nexus/internal/fsapi"
	"nexus/internal/netsim"
	"nexus/internal/plainfs"
)

// Config tunes the simulated testbed.
type Config struct {
	// Profile is the simulated network between clients and server
	// (default netsim.LAN, approximating the paper's campus cell).
	Profile netsim.Profile
	// Loopback disables network simulation entirely (raw local TCP),
	// overriding Profile. Used by fast smoke tests.
	Loopback bool
	// TransitionCost is the per-ecall/ocall charge (default 4 µs,
	// roughly the published SGX transition cost).
	TransitionCost time.Duration
	// BucketSize and ChunkSize are the NEXUS parameters (paper: 128
	// entries, 1 MiB).
	BucketSize uint32
	ChunkSize  uint32
	// CryptoWorkers bounds the parallel chunk-crypto fan-out (0 =
	// GOMAXPROCS with serial small-file fallback, 1 = serial).
	CryptoWorkers int
	// DisableMetadataCache ablates the in-enclave metadata cache.
	DisableMetadataCache bool
	// FreshnessFlat opts the stack out of the default Merkle freshness
	// namespace into the legacy flat version table (§VI-C), the
	// `-exp freshness` baseline. FreshnessTree is its pre-rename
	// spelling, kept so existing sweep configs still parse.
	FreshnessFlat bool
	FreshnessTree bool
	// FreshnessMerkle names the default Merkle-authenticated namespace
	// explicitly (DESIGN.md §15). Mutually exclusive with
	// FreshnessFlat.
	FreshnessMerkle bool
	// ContentDefined stores file contents as deduplicated
	// content-defined chunks (DESIGN.md §16) — the `dedup` experiment's
	// CDC arm.
	ContentDefined bool
	// Writeback selects the enclave's metadata flushing mode: "" or
	// "on" batches dirty metadata at barriers (the client default);
	// "off" flushes eagerly after every operation.
	Writeback string
	// Runs is the number of repetitions averaged per measurement
	// (paper: 10 for microbenchmarks, 25 for applications).
	Runs int
	// Scale divides workload file sizes to keep harness runtime
	// tractable; counts are never scaled. Scale 1 reproduces the paper's
	// sizes.
	Scale int64
}

func (c Config) withDefaults() Config {
	if c.Loopback {
		c.Profile = netsim.Loopback
	} else if c.Profile.IsZero() {
		c.Profile = netsim.LAN
	}
	if c.TransitionCost == 0 {
		c.TransitionCost = 4 * time.Microsecond
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// Env is a running testbed.
type Env struct {
	Config Config

	// Obs is the observability registry shared by the whole NEXUS stack
	// (vfs facade, enclave, SGX transitions, and the NEXUS-side AFS
	// client), so experiments can read latency histograms after a run.
	Obs *nexus.Obs

	server   *afs.Server
	listener net.Listener

	// NEXUS stack.
	NexusClient *nexus.Client
	NexusVolume *nexus.Volume
	NexusAFS    *afs.Client
	NexusFS     fsapi.FileSystem
	IAS         *nexus.AttestationService
	owner       nexus.Identity

	// Baseline stack.
	PlainAFS *afs.Client
	PlainFS  fsapi.FileSystem
}

// NewEnv stands up the testbed.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	env := &Env{Config: cfg}

	env.server = afs.NewServer(backend.NewMemStore())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: listen: %w", err)
	}
	env.listener = netsim.NewListener(l, cfg.Profile)
	go func() { _ = env.server.Serve(env.listener) }()
	addr := l.Addr().String()

	// NEXUS stack. One registry observes every layer of it.
	env.Obs = nexus.NewObs()
	nexusAFS, err := afs.Dial(addr, afs.ClientConfig{Profile: cfg.Profile, Obs: env.Obs})
	if err != nil {
		env.Close()
		return nil, err
	}
	env.NexusAFS = nexusAFS
	ias, err := nexus.NewAttestationService()
	if err != nil {
		env.Close()
		return nil, err
	}
	env.IAS = ias
	client, err := nexus.NewClient(nexus.ClientConfig{
		Store:                nexusAFS,
		IAS:                  ias,
		BucketSize:           cfg.BucketSize,
		ChunkSize:            cfg.ChunkSize,
		CryptoWorkers:        cfg.CryptoWorkers,
		TransitionCost:       cfg.TransitionCost,
		DisableMetadataCache: cfg.DisableMetadataCache,
		FreshnessFlat:        cfg.FreshnessFlat,
		FreshnessTree:        cfg.FreshnessTree,
		FreshnessMerkle:      cfg.FreshnessMerkle,
		ContentDefined:       cfg.ContentDefined,
		WritebackMode:        cfg.Writeback,
		Obs:                  env.Obs,
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	env.NexusClient = client
	owner, err := nexus.NewIdentity("bench-owner")
	if err != nil {
		env.Close()
		return nil, err
	}
	env.owner = owner
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		env.Close()
		return nil, err
	}
	env.NexusVolume = vol
	env.NexusFS = fsapi.Nexus(vol.FS())

	// Baseline stack: plain files over its own AFS client.
	plainAFS, err := afs.Dial(addr, afs.ClientConfig{Profile: cfg.Profile})
	if err != nil {
		env.Close()
		return nil, err
	}
	env.PlainAFS = plainAFS
	env.PlainFS = plainfs.New(plainAFS)
	return env, nil
}

// Close tears the testbed down.
func (e *Env) Close() {
	if e.NexusAFS != nil {
		_ = e.NexusAFS.Close()
	}
	if e.PlainAFS != nil {
		_ = e.PlainAFS.Close()
	}
	if e.server != nil {
		_ = e.server.Close()
	}
}

// FlushCaches evicts every cache layer (AFS client caches and the
// in-enclave metadata cache), as the paper does before each run.
func (e *Env) FlushCaches() {
	e.NexusAFS.FlushCache()
	e.PlainAFS.FlushCache()
	e.NexusClient.Enclave().DropCaches()
}

// Both runs fn over the baseline and NEXUS filesystems in turn,
// returning (plain, nexus) mean latencies over cfg.Runs repetitions.
// prepare, when non-nil, resets state before each timed repetition and
// is not counted.
func (e *Env) Both(prepare func(fs fsapi.FileSystem, root string) error,
	fn func(fs fsapi.FileSystem, root string) error) (plain, nx time.Duration, err error) {

	run := func(fs fsapi.FileSystem, root string) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < e.Config.Runs; i++ {
			iterRoot := fmt.Sprintf("%s/run%d", root, i)
			if prepare != nil {
				if err := prepare(fs, iterRoot); err != nil {
					return 0, err
				}
			}
			e.FlushCaches()
			start := time.Now()
			if err := fn(fs, iterRoot); err != nil {
				return 0, err
			}
			total += time.Since(start)
		}
		return total / time.Duration(e.Config.Runs), nil
	}

	plain, err = run(e.PlainFS, "/bench-plain")
	if err != nil {
		return 0, 0, fmt.Errorf("bench: baseline: %w", err)
	}
	nx, err = run(e.NexusFS, "/bench-nexus")
	if err != nil {
		return 0, 0, fmt.Errorf("bench: nexus: %w", err)
	}
	return plain, nx, nil
}

// ratio formats nexus/plain as the paper's ×N overhead factor.
func ratio(plain, nx time.Duration) float64 {
	if plain <= 0 {
		return 0
	}
	return float64(nx) / float64(plain)
}
