package bench

import (
	"fmt"
	"io"
	"time"
)

// AblationRow measures one design variant's cost on the metadata-heavy
// directory-churn workload (create + delete of n files), the operation
// mix most sensitive to NEXUS's design parameters.
type AblationRow struct {
	Variant string
	Nexus   time.Duration
	// RelativeToBase is this variant's latency over the default
	// configuration's.
	RelativeToBase float64
}

// Ablation quantifies the design choices DESIGN.md calls out: dirnode
// bucket size, the in-enclave metadata cache, the simulated SGX
// transition cost, and the optional volume-wide freshness table
// (§VI-C). Each variant runs the same create+delete workload on its own
// freshly built testbed.
func Ablation(base Config, files int) ([]AblationRow, error) {
	if files <= 0 {
		files = 256
	}
	type variant struct {
		name   string
		mutate func(*Config)
	}
	variants := []variant{
		{"default (bucket=128, cache on)", func(*Config) {}},
		{"bucket size 16", func(c *Config) { c.BucketSize = 16 }},
		{"bucket size 512", func(c *Config) { c.BucketSize = 512 }},
		{"metadata cache off", func(c *Config) { c.DisableMetadataCache = true }},
		{"transition cost 0", func(c *Config) { c.TransitionCost = -1 }},
		{"transition cost 50µs", func(c *Config) { c.TransitionCost = 50 * time.Microsecond }},
		// The base stack runs the default Merkle freshness namespace;
		// this arm swaps in the legacy flat table (the differential
		// oracle) to expose the O(n)-table-vs-O(log n)-proof tradeoff.
		{"freshness flat table", func(c *Config) { c.FreshnessFlat = true }},
	}

	rows := make([]AblationRow, 0, len(variants))
	var baseline time.Duration
	for _, v := range variants {
		cfg := base
		v.mutate(&cfg)
		if cfg.TransitionCost < 0 {
			cfg.TransitionCost = 0
			// withDefaults treats 0 as "use default"; bypass by setting
			// the smallest representable charge.
			cfg.TransitionCost = time.Nanosecond
		}
		env, err := NewEnv(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		elapsed, err := runDirChurn(env, files)
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		row := AblationRow{Variant: v.name, Nexus: elapsed}
		if baseline == 0 {
			baseline = elapsed
		}
		row.RelativeToBase = float64(elapsed) / float64(baseline)
		rows = append(rows, row)
	}
	return rows, nil
}

// runDirChurn times the NEXUS-side create+delete workload.
func runDirChurn(env *Env, files int) (time.Duration, error) {
	fs := env.NexusFS
	if err := fs.MkdirAll("/ablation"); err != nil {
		return 0, err
	}
	env.FlushCaches()
	start := time.Now()
	for i := 0; i < files; i++ {
		if err := fs.Touch(fmt.Sprintf("/ablation/f%06d", i)); err != nil {
			return 0, err
		}
	}
	for i := 0; i < files; i++ {
		if err := fs.Remove(fmt.Sprintf("/ablation/f%06d", i)); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// PrintAblation renders the ablation table.
func PrintAblation(w io.Writer, files int, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation — create+delete of %d files (NEXUS side only)\n", files)
	fmt.Fprintf(w, "%-34s %12s %10s\n", "variant", "latency", "vs default")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %12s %9.2fx\n", r.Variant, fmtDur(r.Nexus), r.RelativeToBase)
	}
	fmt.Fprintln(w)
}
