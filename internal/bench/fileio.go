package bench

import (
	"fmt"
	"io"
	"time"

	"nexus/internal/fsapi"
	"nexus/internal/workload"
)

// FileIORow is one column of Table 5a: the latency of writing and
// reading back a file of the given size with cold caches, with the
// NEXUS-side breakdown into metadata I/O and enclave runtime.
type FileIORow struct {
	SizeMB     int
	OpenAFS    time.Duration
	Nexus      time.Duration
	MetadataIO time.Duration
	Enclave    time.Duration
}

// FileIO reproduces Table 5a ("Latency of File I/O operations") for the
// given file sizes in MiB. The paper uses 1, 2, 16 and 64 MiB.
func FileIO(env *Env, sizesMB []int) ([]FileIORow, error) {
	rows := make([]FileIORow, 0, len(sizesMB))
	content := workload.NewContent(1)
	for _, mb := range sizesMB {
		size := int64(mb) << 20 / env.Config.Scale
		if size < 1 {
			size = 1
		}
		data := content.Fill(size)

		encl := env.NexusClient.Enclave()
		encl.ResetStats()

		plain, nx, err := env.Both(
			func(fs fsapi.FileSystem, root string) error {
				return fs.MkdirAll(root)
			},
			func(fs fsapi.FileSystem, root string) error {
				name := root + "/file.bin"
				// Write (encrypt+upload under NEXUS), drop caches so the
				// read requires a server trip, then read back.
				if err := fs.WriteFile(name, data); err != nil {
					return err
				}
				env.FlushCaches()
				got, err := fs.ReadFile(name)
				if err != nil {
					return err
				}
				if len(got) != len(data) {
					return fmt.Errorf("read %d bytes, want %d", len(got), len(data))
				}
				return nil
			},
		)
		if err != nil {
			return nil, fmt.Errorf("file I/O %d MB: %w", mb, err)
		}
		st := encl.Stats()
		runs := time.Duration(env.Config.Runs)
		rows = append(rows, FileIORow{
			SizeMB:     mb,
			OpenAFS:    plain,
			Nexus:      nx,
			MetadataIO: st.MetadataIOTime / runs,
			Enclave:    (encl.SGX().TimeInEnclave()) / runs,
		})
	}
	return rows, nil
}

// PrintFileIO renders Table 5a.
func PrintFileIO(w io.Writer, rows []FileIORow) {
	fmt.Fprintln(w, "Table 5a — Latency of File I/O operations (write + cold read)")
	fmt.Fprintf(w, "%-14s", "Prototype")
	for _, r := range rows {
		fmt.Fprintf(w, "%10dMB", r.SizeMB)
	}
	fmt.Fprintln(w)
	line := func(name string, get func(FileIORow) time.Duration) {
		fmt.Fprintf(w, "%-14s", name)
		for _, r := range rows {
			fmt.Fprintf(w, "%12s", fmtDur(get(r)))
		}
		fmt.Fprintln(w)
	}
	line("OpenAFS", func(r FileIORow) time.Duration { return r.OpenAFS })
	line("NEXUS", func(r FileIORow) time.Duration { return r.Nexus })
	line("  MetadataIO", func(r FileIORow) time.Duration { return r.MetadataIO })
	line("  Enclave", func(r FileIORow) time.Duration { return r.Enclave })
	fmt.Fprintln(w)
}

// DirOpsRow is one column of Table 5b: creating then deleting n files in
// a single flat directory.
type DirOpsRow struct {
	NumFiles   int
	OpenAFS    time.Duration
	Nexus      time.Duration
	MetadataIO time.Duration
	Enclave    time.Duration
}

// DirOps reproduces Table 5b ("Latency of directory operations"). The
// paper uses 1024, 2048, 4096 and 8192 files.
func DirOps(env *Env, counts []int) ([]DirOpsRow, error) {
	rows := make([]DirOpsRow, 0, len(counts))
	for _, n := range counts {
		encl := env.NexusClient.Enclave()
		encl.ResetStats()

		plain, nx, err := env.Both(
			func(fs fsapi.FileSystem, root string) error {
				return fs.MkdirAll(root)
			},
			func(fs fsapi.FileSystem, root string) error {
				for i := 0; i < n; i++ {
					if err := fs.Touch(fmt.Sprintf("%s/f%06d", root, i)); err != nil {
						return err
					}
				}
				for i := 0; i < n; i++ {
					if err := fs.Remove(fmt.Sprintf("%s/f%06d", root, i)); err != nil {
						return err
					}
				}
				return nil
			},
		)
		if err != nil {
			return nil, fmt.Errorf("dir ops %d files: %w", n, err)
		}
		st := encl.Stats()
		runs := time.Duration(env.Config.Runs)
		rows = append(rows, DirOpsRow{
			NumFiles:   n,
			OpenAFS:    plain,
			Nexus:      nx,
			MetadataIO: st.MetadataIOTime / runs,
			Enclave:    encl.SGX().TimeInEnclave() / runs,
		})
	}
	return rows, nil
}

// PrintDirOps renders Table 5b.
func PrintDirOps(w io.Writer, rows []DirOpsRow) {
	fmt.Fprintln(w, "Table 5b — Latency of directory operations (create + delete)")
	fmt.Fprintf(w, "%-14s", "Prototype")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d", r.NumFiles)
	}
	fmt.Fprintln(w)
	line := func(name string, get func(DirOpsRow) time.Duration) {
		fmt.Fprintf(w, "%-14s", name)
		for _, r := range rows {
			fmt.Fprintf(w, "%12s", fmtDur(get(r)))
		}
		fmt.Fprintln(w)
	}
	line("OpenAFS", func(r DirOpsRow) time.Duration { return r.OpenAFS })
	line("NEXUS", func(r DirOpsRow) time.Duration { return r.Nexus })
	line("  MetadataIO", func(r DirOpsRow) time.Duration { return r.MetadataIO })
	line("  Enclave", func(r DirOpsRow) time.Duration { return r.Enclave })
	fmt.Fprintln(w)
}

// fmtDur renders durations compactly with two significant decimals.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
