package bench

import (
	"fmt"
	"io"
	"math/rand"

	"nexus/internal/fsapi"
	"nexus/internal/kvstore"
	"nexus/internal/sqldb"
)

// Database-benchmark parameters matching db_bench: 16-byte keys, 100-byte
// values, 4 MB of cache memory (§VII-B).
const (
	dbKeySize   = 16
	dbValueSize = 100
	dbCacheSize = 4 << 20
)

// DBRow is one line of Table II.
type DBRow struct {
	Engine    string // "LevelDB" or "SQLITE"
	Operation string
	// PerOp reports latency-per-operation benchmarks (fillsync et al.)
	// instead of throughput.
	PerOp    bool
	OpenAFS  float64 // MB/s, or µs/op when PerOp
	Nexus    float64
	Overhead float64 // nexus time / openafs time (×N as in the paper)
}

// dbWorkload runs one benchmark operation over a filesystem and returns
// the elapsed time and the number of bytes logically processed.
type dbWorkload struct {
	engine    string
	operation string
	perOp     bool
	ops       int
	run       func(fs fsapi.FileSystem, root string) error
}

func dbKey(i int) string { return fmt.Sprintf("%0*d", dbKeySize, i) }

func dbValue(rng *rand.Rand, n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('a' + rng.Intn(26))
	}
	return v
}

// Database reproduces Table II. entries scales the per-operation counts
// (the async fills use entries ops, sync fills entries/10, fill100K
// entries/20 at 100 KB values).
func Database(env *Env, entries int) ([]DBRow, error) {
	if entries <= 0 {
		entries = 2000
	}
	syncEntries := entries / 10
	if syncEntries < 10 {
		syncEntries = 10
	}
	bigEntries := entries / 20
	if bigEntries < 5 {
		bigEntries = 5
	}

	kvOpts := kvstore.Options{WriteBufferSize: dbCacheSize}

	workloads := []dbWorkload{
		{engine: "LevelDB", operation: "fillseq", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			db, err := kvstore.Open(fs, root, kvOpts)
			if err != nil {
				return err
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < entries; i++ {
				if err := db.Put(dbKey(i), dbValue(rng, dbValueSize), kvstore.WriteOptions{}); err != nil {
					return err
				}
			}
			return nil
		}},
		{engine: "LevelDB", operation: "fillsync", perOp: true, ops: syncEntries, run: func(fs fsapi.FileSystem, root string) error {
			db, err := kvstore.Open(fs, root, kvOpts)
			if err != nil {
				return err
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(2))
			for i := 0; i < syncEntries; i++ {
				if err := db.Put(dbKey(i), dbValue(rng, dbValueSize), kvstore.WriteOptions{Sync: true}); err != nil {
					return err
				}
			}
			return nil
		}},
		{engine: "LevelDB", operation: "fillrandom", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			db, err := kvstore.Open(fs, root, kvOpts)
			if err != nil {
				return err
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(3))
			for _, i := range rng.Perm(entries) {
				if err := db.Put(dbKey(i), dbValue(rng, dbValueSize), kvstore.WriteOptions{}); err != nil {
					return err
				}
			}
			return nil
		}},
		{engine: "LevelDB", operation: "overwrite", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			db, err := kvstore.Open(fs, root, kvOpts)
			if err != nil {
				return err
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(4))
			for _, i := range rng.Perm(entries) { // pre-fill
				if err := db.Put(dbKey(i), dbValue(rng, dbValueSize), kvstore.WriteOptions{}); err != nil {
					return err
				}
			}
			for _, i := range rng.Perm(entries) { // timed region includes both; overwrite dominates
				if err := db.Put(dbKey(i), dbValue(rng, dbValueSize), kvstore.WriteOptions{}); err != nil {
					return err
				}
			}
			return nil
		}},
		{engine: "LevelDB", operation: "readseq", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			db, err := filledKV(fs, root, kvOpts, entries)
			if err != nil {
				return err
			}
			defer db.Close()
			it, err := db.NewIterator(false)
			if err != nil {
				return err
			}
			for it.Next() {
				_ = it.Value()
			}
			return nil
		}},
		{engine: "LevelDB", operation: "readreverse", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			db, err := filledKV(fs, root, kvOpts, entries)
			if err != nil {
				return err
			}
			defer db.Close()
			it, err := db.NewIterator(true)
			if err != nil {
				return err
			}
			for it.Next() {
				_ = it.Value()
			}
			return nil
		}},
		{engine: "LevelDB", operation: "readrandom", perOp: true, ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			db, err := filledKV(fs, root, kvOpts, entries)
			if err != nil {
				return err
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < entries; i++ {
				if _, err := db.Get(dbKey(rng.Intn(entries))); err != nil {
					return err
				}
			}
			return nil
		}},
		{engine: "LevelDB", operation: "fill100K", ops: bigEntries, run: func(fs fsapi.FileSystem, root string) error {
			db, err := kvstore.Open(fs, root, kvOpts)
			if err != nil {
				return err
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(6))
			for i := 0; i < bigEntries; i++ {
				if err := db.Put(dbKey(i), dbValue(rng, 100<<10), kvstore.WriteOptions{}); err != nil {
					return err
				}
			}
			return nil
		}},

		// SQLite-like engine.
		{engine: "SQLITE", operation: "fillseq", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			return sqlFill(fs, root, entries, false, 1, false)
		}},
		{engine: "SQLITE", operation: "fillseqsync", perOp: true, ops: syncEntries, run: func(fs fsapi.FileSystem, root string) error {
			return sqlFill(fs, root, syncEntries, false, 1, true)
		}},
		{engine: "SQLITE", operation: "fillseqbatch", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			return sqlFill(fs, root, entries, false, 1000, false)
		}},
		{engine: "SQLITE", operation: "fillrandom", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			return sqlFill(fs, root, entries, true, 1, false)
		}},
		{engine: "SQLITE", operation: "fillrandsync", perOp: true, ops: syncEntries, run: func(fs fsapi.FileSystem, root string) error {
			return sqlFill(fs, root, syncEntries, true, 1, true)
		}},
		{engine: "SQLITE", operation: "fillrandbatch", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			return sqlFill(fs, root, entries, true, 1000, false)
		}},
		{engine: "SQLITE", operation: "overwrite", ops: entries, run: func(fs fsapi.FileSystem, root string) error {
			if err := sqlFill(fs, root, entries, true, 1000, false); err != nil {
				return err
			}
			return sqlFillAt(fs, root+"/ow", entries, true, 1, false)
		}},
	}

	rows := make([]DBRow, 0, len(workloads))
	for _, wl := range workloads {
		plain, nx, err := env.Both(
			func(fs fsapi.FileSystem, root string) error { return fs.MkdirAll(root) },
			wl.run,
		)
		if err != nil {
			return nil, fmt.Errorf("db %s/%s: %w", wl.engine, wl.operation, err)
		}
		row := DBRow{
			Engine:    wl.engine,
			Operation: wl.operation,
			PerOp:     wl.perOp,
			Overhead:  ratio(plain, nx),
		}
		if wl.perOp {
			row.OpenAFS = float64(plain.Microseconds()) / float64(wl.ops)
			row.Nexus = float64(nx.Microseconds()) / float64(wl.ops)
		} else {
			bytes := float64(wl.ops) * float64(dbKeySize+dbValueSize)
			if wl.operation == "fill100K" {
				bytes = float64(wl.ops) * float64(dbKeySize+100<<10)
			}
			row.OpenAFS = bytes / (1 << 20) / plain.Seconds()
			row.Nexus = bytes / (1 << 20) / nx.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// filledKV opens and pre-populates a KV store outside the caller's
// timing-sensitive region (read benchmarks).
func filledKV(fs fsapi.FileSystem, root string, opts kvstore.Options, entries int) (*kvstore.DB, error) {
	db, err := kvstore.Open(fs, root, opts)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < entries; i++ {
		if err := db.Put(dbKey(i), dbValue(rng, dbValueSize), kvstore.WriteOptions{}); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

func sqlFill(fs fsapi.FileSystem, root string, entries int, random bool, batch int, sync bool) error {
	return sqlFillAt(fs, root+"/sql", entries, random, batch, sync)
}

func sqlFillAt(fs fsapi.FileSystem, prefix string, entries int, random bool, batch int, sync bool) error {
	file, err := fs.Open(prefix+".db", fsapi.O_RDWR|fsapi.O_CREATE)
	if err != nil {
		return err
	}
	journal, err := fs.Open(prefix+".db-journal", fsapi.O_RDWR|fsapi.O_CREATE)
	if err != nil {
		return err
	}
	db, err := sqldb.Open(file, journal)
	if err != nil {
		return err
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(11))
	order := make([]int, entries)
	for i := range order {
		order[i] = i
	}
	if random {
		rng.Shuffle(entries, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for off := 0; off < entries; off += batch {
		end := off + batch
		if end > entries {
			end = entries
		}
		if err := db.Begin(sync); err != nil {
			return err
		}
		for _, i := range order[off:end] {
			if err := db.Put([]byte(dbKey(i)), dbValue(rng, dbValueSize)); err != nil {
				return err
			}
		}
		if err := db.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// PrintDatabase renders Table II.
func PrintDatabase(w io.Writer, rows []DBRow) {
	fmt.Fprintln(w, "Table II — Database benchmark results")
	fmt.Fprintf(w, "%-10s %-14s %14s %14s %10s\n", "engine", "operation", "openafs", "nexus", "overhead")
	engine := ""
	for _, r := range rows {
		if r.Engine != engine {
			engine = r.Engine
			fmt.Fprintf(w, "%s\n", engine)
		}
		unit := "MB/s"
		if r.PerOp {
			unit = "µs/op"
		}
		fmt.Fprintf(w, "%-10s %-14s %9.2f %-4s %9.2f %-4s %9.2fx\n",
			"", r.Operation, r.OpenAFS, unit, r.Nexus, unit, r.Overhead)
	}
	fmt.Fprintln(w)
}
