package bench

import (
	"strings"
	"testing"
)

// TestFreshnessSweepScaling is the O(log n)-vs-O(n) claim in miniature:
// merkle evidence and enclave state stay near-constant while the flat
// baseline's grow linearly with the namespace.
func TestFreshnessSweepScaling(t *testing.T) {
	rows, err := FreshnessSweep([]int{256, 4096}, "both", 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	get := func(mode string, n int) FreshnessRow {
		for _, r := range rows {
			if r.Mode == mode && r.Objects == n {
				return r
			}
		}
		t.Fatalf("missing %s row at n=%d", mode, n)
		return FreshnessRow{}
	}

	mSmall, mBig := get("merkle", 256), get("merkle", 4096)
	fSmall, fBig := get("flat", 256), get("flat", 4096)

	// Enclave state: merkle is the 40-byte commitment at every size,
	// flat carries the whole table.
	if mSmall.StateBytes != merkleStateBytes || mBig.StateBytes != merkleStateBytes {
		t.Fatalf("merkle state bytes %d/%d, want constant %d", mSmall.StateBytes, mBig.StateBytes, merkleStateBytes)
	}
	if fBig.StateBytes != 4096*flatEntryBytes || fSmall.StateBytes != 256*flatEntryBytes {
		t.Fatalf("flat state bytes %d/%d do not track the namespace", fSmall.StateBytes, fBig.StateBytes)
	}

	// Evidence per load: a 16× larger namespace costs the flat design
	// 16× the transfer but the merkle design only ~4 more proof steps.
	if fBig.BytesPerOp < 15*fSmall.BytesPerOp {
		t.Fatalf("flat bytes/op %v → %v is not linear in namespace size", fSmall.BytesPerOp, fBig.BytesPerOp)
	}
	if mBig.BytesPerOp > 2*mSmall.BytesPerOp {
		t.Fatalf("merkle bytes/op %v → %v grew faster than logarithmic", mSmall.BytesPerOp, mBig.BytesPerOp)
	}
	if mBig.BytesPerOp >= fBig.BytesPerOp {
		t.Fatalf("merkle proof (%v B) not smaller than flat table (%v B) at 4096 objects", mBig.BytesPerOp, fBig.BytesPerOp)
	}
}

func TestFreshnessSweepRejectsBadInput(t *testing.T) {
	if _, err := FreshnessSweep([]int{64}, "mystery", 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := FreshnessSweep([]int{1}, "both", 1); err == nil {
		t.Fatal("degenerate namespace size accepted")
	}
}

func TestFreshnessMetricsAndPrint(t *testing.T) {
	rows, err := FreshnessSweep([]int{64}, "both", 4)
	if err != nil {
		t.Fatal(err)
	}
	exp := FreshnessMetrics(rows)
	for _, name := range []string{"merkle_64_objects", "flat_64_objects"} {
		m, ok := exp[name]
		if !ok {
			t.Fatalf("metric %q missing from experiment", name)
		}
		if m.NsPerOp <= 0 || m.ProofBytesPerOp <= 0 {
			t.Fatalf("metric %q has empty figures: %+v", name, m)
		}
	}
	var sb strings.Builder
	PrintFreshness(&sb, rows)
	for _, want := range []string{"merkle", "flat", "enclave state"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("printed table missing %q:\n%s", want, sb.String())
		}
	}
}
