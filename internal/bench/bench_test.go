package bench

import (
	"bytes"
	"strings"
	"testing"

	"nexus/internal/workload"
)

// tinyEnv builds a testbed with zero simulated latency and 1 run, so the
// smoke tests exercise every experiment path quickly.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(Config{
		Loopback: true,
		Runs:     1,
		Scale:    1 << 10, // shrink file sizes 1024x
	})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestFileIOExperiment(t *testing.T) {
	env := tinyEnv(t)
	rows, err := FileIO(env, []int{1, 2})
	if err != nil {
		t.Fatalf("FileIO: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OpenAFS <= 0 || r.Nexus <= 0 {
			t.Fatalf("non-positive latency: %+v", r)
		}
		if r.Enclave <= 0 {
			t.Fatalf("no enclave time recorded: %+v", r)
		}
	}
	var out bytes.Buffer
	PrintFileIO(&out, rows)
	if !strings.Contains(out.String(), "NEXUS") || !strings.Contains(out.String(), "MetadataIO") {
		t.Fatalf("print output malformed:\n%s", out.String())
	}
}

func TestDirOpsExperiment(t *testing.T) {
	env := tinyEnv(t)
	rows, err := DirOps(env, []int{16, 32})
	if err != nil {
		t.Fatalf("DirOps: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's shape: NEXUS metadata-heavy churn costs more than the
	// baseline.
	for _, r := range rows {
		if r.Nexus <= r.OpenAFS {
			t.Logf("note: nexus %v <= openafs %v at %d files (loopback)", r.Nexus, r.OpenAFS, r.NumFiles)
		}
		if r.MetadataIO <= 0 {
			t.Fatalf("no metadata I/O recorded: %+v", r)
		}
	}
	var out bytes.Buffer
	PrintDirOps(&out, rows)
	if !strings.Contains(out.String(), "directory operations") {
		t.Fatal("print output malformed")
	}
}

func TestGitCloneExperiment(t *testing.T) {
	env := tinyEnv(t)
	tiny := workload.TreeSpec{
		Name: "tiny", NumFiles: 25, NumDirs: 6, MaxDepth: 3,
		MinFileSize: 64, MaxFileSize: 512, Seed: 5,
	}
	rows, err := GitClone(env, []workload.TreeSpec{tiny})
	if err != nil {
		t.Fatalf("GitClone: %v", err)
	}
	if len(rows) != 1 || rows[0].NumFiles != 25 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Overhead <= 0 {
		t.Fatalf("no overhead computed: %+v", rows[0])
	}
	var out bytes.Buffer
	PrintGitClone(&out, rows)
	if !strings.Contains(out.String(), "tiny") {
		t.Fatal("print output malformed")
	}
}

func TestDatabaseExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("database experiment is slow")
	}
	env := tinyEnv(t)
	rows, err := Database(env, 300)
	if err != nil {
		t.Fatalf("Database: %v", err)
	}
	if len(rows) != 15 { // 8 LevelDB + 7 SQLite operations as in Table II
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Engine+"/"+r.Operation] = true
		if r.OpenAFS <= 0 || r.Nexus <= 0 {
			t.Fatalf("non-positive rate: %+v", r)
		}
	}
	for _, want := range []string{
		"LevelDB/fillseq", "LevelDB/fillsync", "LevelDB/readrandom", "LevelDB/fill100K",
		"SQLITE/fillseqsync", "SQLITE/fillrandbatch", "SQLITE/overwrite",
	} {
		if !names[want] {
			t.Fatalf("missing operation %s", want)
		}
	}
	var out bytes.Buffer
	PrintDatabase(&out, rows)
	if !strings.Contains(out.String(), "LevelDB") || !strings.Contains(out.String(), "SQLITE") {
		t.Fatal("print output malformed")
	}
}

func TestLinuxAppsExperiment(t *testing.T) {
	env := tinyEnv(t)
	tiny := workload.FlatSpec{Name: "tiny", NumFiles: 12, FileSize: 4 << 10}
	rows, err := LinuxApps(env, []workload.FlatSpec{tiny})
	if err != nil {
		t.Fatalf("LinuxApps: %v", err)
	}
	if len(rows) != 6 { // tar-x du grep tar-c cp mv
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.App] = true
	}
	for _, app := range []string{"tar-x", "du", "grep", "tar-c", "cp", "mv"} {
		if !seen[app] {
			t.Fatalf("missing app %s", app)
		}
	}
	var out bytes.Buffer
	PrintLinuxApps(&out, rows)
	if !strings.Contains(out.String(), "tar-x") {
		t.Fatal("print output malformed")
	}
}

func TestRevocationExperiment(t *testing.T) {
	env := tinyEnv(t)
	// 1 MiB nominal files scale down to 1 KiB under tinyEnv; the data
	// population still has to dwarf the constant metadata cost of a
	// revoke (one dirnode plus the default Merkle freshness root).
	spec := workload.FlatSpec{Name: "tiny-sfld", NumFiles: 32, FileSize: 1 << 20}
	rows, err := Revocation(env, []workload.FlatSpec{spec})
	if err != nil {
		t.Fatalf("Revocation: %v", err)
	}
	r := rows[0]
	// The headline claim: NEXUS revocation touches orders of magnitude
	// fewer bytes than the pure-crypto baseline.
	if r.NexusBytes <= 0 || r.CryptoBytes <= 0 {
		t.Fatalf("empty measurements: %+v", r)
	}
	if r.NexusBytes >= r.CryptoBytes {
		t.Fatalf("NEXUS revocation (%d bytes) not cheaper than crypto-fs (%d bytes)",
			r.NexusBytes, r.CryptoBytes)
	}
	// Baseline re-encrypted all data.
	if r.CryptoBytes != r.DataBytes {
		t.Fatalf("crypto-fs re-encrypted %d bytes of %d", r.CryptoBytes, r.DataBytes)
	}
	var out bytes.Buffer
	PrintRevocation(&out, rows)
	if !strings.Contains(out.String(), "Revocation") {
		t.Fatal("print output malformed")
	}
}

func TestAblationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation builds seven testbeds")
	}
	rows, err := Ablation(Config{Loopback: true, Runs: 1, Scale: 1 << 10}, 24)
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	if rows[0].RelativeToBase != 1.0 {
		t.Fatalf("baseline relative = %f", rows[0].RelativeToBase)
	}
	var freshness *AblationRow
	for i := range rows {
		if rows[i].Nexus <= 0 {
			t.Fatalf("non-positive latency: %+v", rows[i])
		}
		if strings.Contains(rows[i].Variant, "freshness") {
			freshness = &rows[i]
		}
	}
	// The flat-table arm swaps freshness implementations against the
	// Merkle default, so its relative cost can land either side of 1.0
	// at this tiny scale — it just has to have run and measured.
	if freshness == nil || freshness.RelativeToBase <= 0 {
		t.Fatalf("freshness ablation missing or unmeasured: %+v", freshness)
	}
	var out bytes.Buffer
	PrintAblation(&out, 24, rows)
	if !strings.Contains(out.String(), "Ablation") {
		t.Fatal("print output malformed")
	}
}

func TestSharingExperiment(t *testing.T) {
	env := tinyEnv(t)
	rows, err := Sharing(env)
	if err != nil {
		t.Fatalf("Sharing: %v", err)
	}
	ops := map[string]bool{}
	for _, r := range rows {
		ops[r.Operation] = true
	}
	for _, want := range []string{"create offer (m1)", "grant access (m2)", "accept grant", "add user"} {
		if !ops[want] {
			t.Fatalf("missing operation %q in %v", want, rows)
		}
	}
	var out bytes.Buffer
	PrintSharing(&out, rows)
	if !strings.Contains(out.String(), "Sharing costs") {
		t.Fatal("print output malformed")
	}
}
