package bench

import (
	"fmt"
	"io"
	"time"

	"nexus"
	"nexus/internal/backend"
	"nexus/internal/cryptofs"
	"nexus/internal/groupkey"
	"nexus/internal/workload"
)

// RevocationRow compares the cost of revoking one user's access to a
// directory under NEXUS (re-encrypt one metadata object) against a pure
// cryptographic filesystem (re-encrypt and re-upload every affected
// file), reproducing §VII-E.
type RevocationRow struct {
	Workload  string
	DataBytes int64

	// NEXUS: bytes of metadata re-encrypted + uploaded, and elapsed time.
	NexusBytes int64
	NexusTime  time.Duration

	// Pure-crypto baseline: bytes re-encrypted and uploaded, and time.
	CryptoBytes    int64
	CryptoUploaded int64
	CryptoTime     time.Duration
}

// Revocation reproduces the §VII-E revocation estimates over the given
// flat workloads (paper: SFLD with 10 MB of data vs LFSD with 3.2 GB).
func Revocation(env *Env, specs []workload.FlatSpec) ([]RevocationRow, error) {
	rows := make([]RevocationRow, 0, len(specs))

	alice, err := nexus.NewIdentity("revokee")
	if err != nil {
		return nil, err
	}
	if err := env.NexusVolume.AddUser("revokee", alice.PublicKey); err != nil {
		return nil, err
	}

	for _, spec := range specs {
		row := RevocationRow{Workload: spec.Name}
		size := spec.FileSize / env.Config.Scale
		if size < 1 {
			size = 1
		}
		row.DataBytes = int64(spec.NumFiles) * size

		// --- NEXUS side: populate a directory, grant, then revoke. ---
		root := "/revoke-" + spec.Name
		if err := workload.MaterializeFlat(env.NexusFS, root, spec, env.Config.Scale); err != nil {
			return nil, fmt.Errorf("materializing %s: %w", spec.Name, err)
		}
		if err := env.NexusVolume.SetACL(root, "revokee", nexus.ReadWrite); err != nil {
			return nil, err
		}
		encl := env.NexusClient.Enclave()
		encl.ResetStats()
		start := time.Now()
		if err := env.NexusVolume.SetACL(root, "revokee", nexus.NoRights); err != nil {
			return nil, fmt.Errorf("nexus revocation: %w", err)
		}
		row.NexusTime = time.Since(start)
		row.NexusBytes = encl.Stats().MetadataBytesWritten

		// --- Pure-crypto baseline over the same population. ---
		owner, err := cryptofs.NewUser("owner")
		if err != nil {
			return nil, err
		}
		revokee, err := cryptofs.NewUser("revokee")
		if err != nil {
			return nil, err
		}
		cfs := cryptofs.New(backend.NewMemStore(), owner)
		cfs.AddUser(revokee)
		content := workload.NewContent(1)
		data := content.Fill(size)
		paths := make([]string, 0, spec.NumFiles)
		for i := 0; i < spec.NumFiles; i++ {
			p := fmt.Sprintf("/f%05d", i)
			paths = append(paths, p)
			if err := cfs.WriteFile(p, data, []string{"revokee"}); err != nil {
				return nil, err
			}
		}
		start = time.Now()
		stats, err := cfs.Revoke("revokee", paths)
		if err != nil {
			return nil, fmt.Errorf("cryptofs revocation: %w", err)
		}
		row.CryptoTime = time.Since(start)
		row.CryptoBytes = stats.BytesReencrypted
		row.CryptoUploaded = stats.BytesUploaded
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintRevocation renders the §VII-E comparison.
func PrintRevocation(w io.Writer, rows []RevocationRow) {
	fmt.Fprintln(w, "§VII-E — Revocation estimates (revoke one user from a directory)")
	fmt.Fprintf(w, "%-24s %12s | %14s %10s | %16s %12s\n",
		"workload", "data", "nexus bytes", "time", "crypto-fs bytes", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12s | %14s %10s | %16s %12s\n",
			r.Workload, fmtBytes(r.DataBytes),
			fmtBytes(r.NexusBytes), fmtDur(r.NexusTime),
			fmtBytes(r.CryptoBytes), fmtDur(r.CryptoTime))
	}
	fmt.Fprintln(w)
}

// MembershipRow is one cell of the revocation membership sweep: the
// cost of revoking one member at a given group size, under the subgroup
// key tree ("tree") or the rotate-and-rewrap-everyone baseline
// ("flat").
type MembershipRow struct {
	Mode       string
	Members    int
	WrapsPerOp float64
	BytesPerOp float64
	NsPerOp    float64
}

// MembershipSweep measures per-revocation wrap work across membership
// sizes (the 10^3–10^6 sweep), driving the key structures directly:
// the enclave's 64K user-table cap bounds end-to-end scale, and the
// wrap counts are a property of the tree alone. mode selects "tree",
// "flat", or "both"; runs distinct members are revoked per cell and
// the costs averaged.
func MembershipSweep(counts []int, mode string, runs int) ([]MembershipRow, error) {
	switch mode {
	case "tree", "flat", "both":
	default:
		return nil, fmt.Errorf("bench: unknown sweep mode %q (want tree|flat|both)", mode)
	}
	var rows []MembershipRow
	for _, n := range counts {
		if n < 4 {
			return nil, fmt.Errorf("bench: sweep size %d too small", n)
		}
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(i)
		}
		if mode != "flat" {
			tree, err := groupkey.NewTreeWithMembers(groupkey.Config{}, ids)
			if err != nil {
				return nil, err
			}
			row, err := sweepRevocations("tree", tree, ids, runs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		if mode != "tree" {
			flat, err := groupkey.NewFlatWithMembers(ids)
			if err != nil {
				return nil, err
			}
			row, err := sweepRevocations("flat", flat, ids, runs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// sweepRevocations revokes `runs` distinct members spread across the
// group and averages the metered wrap work.
func sweepRevocations(mode string, g groupkey.Group, ids []uint32, runs int) (MembershipRow, error) {
	n := len(ids)
	if runs < 1 {
		runs = 1
	}
	if runs > n/2 {
		runs = n / 2
	}
	g.ResetStats()
	start := time.Now()
	for i := 0; i < runs; i++ {
		victim := ids[(i*(n/runs)+n/2)%n]
		if err := g.Revoke(victim); err != nil {
			return MembershipRow{}, fmt.Errorf("bench: %s revoke at n=%d: %w", mode, n, err)
		}
	}
	elapsed := time.Since(start)
	st := g.Stats()
	return MembershipRow{
		Mode:       mode,
		Members:    n,
		WrapsPerOp: float64(st.Wraps) / float64(runs),
		BytesPerOp: float64(st.WrapBytes) / float64(runs),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(runs),
	}, nil
}

// PrintMembership renders the membership sweep.
func PrintMembership(w io.Writer, rows []MembershipRow) {
	fmt.Fprintln(w, "§VII-E — Revocation vs membership size (per-revocation key-wrap work)")
	fmt.Fprintf(w, "%-6s %10s %14s %14s %12s\n", "mode", "members", "wraps/op", "bytes/op", "time/op")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10d %14.1f %14s %12s\n",
			r.Mode, r.Members, r.WrapsPerOp, fmtBytes(int64(r.BytesPerOp)), fmtDur(time.Duration(r.NsPerOp)))
	}
	fmt.Fprintln(w)
}

// MembershipMetrics converts sweep rows into the revoke_membership
// experiment for the JSON report.
func MembershipMetrics(rows []MembershipRow) Experiment {
	exp := make(Experiment)
	for _, r := range rows {
		exp[fmt.Sprintf("%s_%d_users", r.Mode, r.Members)] = Metric{
			NsPerOp:    r.NsPerOp,
			WrapsPerOp: r.WrapsPerOp,
			BytesPerOp: r.BytesPerOp,
		}
	}
	return exp
}

// SharingRow documents the §VII-F sharing costs.
type SharingRow struct {
	Operation string
	Time      time.Duration
	// Writes counts store objects written by the operation.
	Note string
}

// Sharing measures the sharing costs discussed in §VII-F: the rootkey
// exchange (one file write per message), adding/removing a user (one
// supernode update), and ACL evaluation scaling with entry count.
func Sharing(env *Env) ([]SharingRow, error) {
	var rows []SharingRow

	// Remote party on its own platform.
	remoteStore := nexus.NewMemoryStore()
	remote, err := nexus.NewClient(nexus.ClientConfig{Store: remoteStore, IAS: env.IAS})
	if err != nil {
		return nil, err
	}
	bob, err := nexus.NewIdentity("bob")
	if err != nil {
		return nil, err
	}
	owner := env.owner

	start := time.Now()
	offer, err := remote.CreateShareOffer(bob)
	if err != nil {
		return nil, err
	}
	rows = append(rows, SharingRow{Operation: "create offer (m1)", Time: time.Since(start),
		Note: "1 file write to publish"})

	start = time.Now()
	grant, err := env.NexusVolume.GrantAccess(offer, "bob", bob.PublicKey, owner)
	if err != nil {
		return nil, err
	}
	rows = append(rows, SharingRow{Operation: "grant access (m2)", Time: time.Since(start),
		Note: "verify quote + 1 supernode update + 1 file write"})

	start = time.Now()
	if _, _, err := remote.AcceptShareGrant(grant, owner.PublicKey); err != nil {
		return nil, err
	}
	rows = append(rows, SharingRow{Operation: "accept grant", Time: time.Since(start),
		Note: "ECDH + seal, no uploads"})

	// Add/remove user: one supernode update each.
	carol, err := nexus.NewIdentity("carol")
	if err != nil {
		return nil, err
	}
	encl := env.NexusClient.Enclave()
	encl.ResetStats()
	start = time.Now()
	if err := env.NexusVolume.AddUser("carol", carol.PublicKey); err != nil {
		return nil, err
	}
	rows = append(rows, SharingRow{Operation: "add user", Time: time.Since(start),
		Note: fmt.Sprintf("%d metadata bytes", encl.Stats().MetadataBytesWritten)})

	encl.ResetStats()
	start = time.Now()
	if err := env.NexusVolume.RemoveUser("carol"); err != nil {
		return nil, err
	}
	rows = append(rows, SharingRow{Operation: "remove user (revocation)", Time: time.Since(start),
		Note: fmt.Sprintf("%d metadata bytes", encl.Stats().MetadataBytesWritten)})

	// ACL evaluation scaling: lookup latency with 1 vs 64 ACL entries.
	for _, n := range []int{1, 16, 64} {
		dir := fmt.Sprintf("/aclscale%d", n)
		if err := env.NexusFS.MkdirAll(dir); err != nil {
			return nil, err
		}
		if err := env.NexusFS.WriteFile(dir+"/f", []byte("x")); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("acluser%d-%d", n, i)
			u, err := nexus.NewIdentity(name)
			if err != nil {
				return nil, err
			}
			if err := env.NexusVolume.AddUser(name, u.PublicKey); err != nil {
				return nil, err
			}
			if err := env.NexusVolume.SetACL(dir, name, nexus.ReadOnly); err != nil {
				return nil, err
			}
		}
		start = time.Now()
		const reads = 20
		for i := 0; i < reads; i++ {
			if _, err := env.NexusFS.ReadFile(dir + "/f"); err != nil {
				return nil, err
			}
		}
		rows = append(rows, SharingRow{
			Operation: fmt.Sprintf("read with %d ACL entries", n),
			Time:      time.Since(start) / reads,
			Note:      "policy check dominated by metadata fetch",
		})
	}
	return rows, nil
}

// PrintSharing renders the §VII-F costs.
func PrintSharing(w io.Writer, rows []SharingRow) {
	fmt.Fprintln(w, "§VII-F — Sharing costs")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %12s   %s\n", r.Operation, fmtDur(r.Time), r.Note)
	}
	fmt.Fprintln(w)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
