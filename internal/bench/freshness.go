package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"nexus/internal/merkle"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// FreshnessRow is one cell of the freshness-at-scale sweep: the cost of
// verifying ONE metadata load's freshness at a given namespace size,
// under the Merkle-authenticated namespace ("merkle", DESIGN.md §15) or
// the flat version table it replaces ("flat", §VI-C).
type FreshnessRow struct {
	Mode    string
	Objects int
	// NsPerOp is the time to produce, transfer-decode, and verify the
	// freshness evidence for one load.
	NsPerOp float64
	// BytesPerOp is the evidence transferred per load: one encoded
	// proof (merkle) vs the whole encoded table (flat).
	BytesPerOp float64
	// StateBytes is the enclave-resident state the scheme needs: root
	// hash + epoch (merkle) vs the full uuid→version map (flat).
	StateBytes int64
}

// freshnessSweepSeed pins the sweep's namespace contents; the sweep is
// a pure function of (counts, mode, runs).
const freshnessSweepSeed = 0x5eed

// merkleStateBytes is the enclave-resident commitment: a 32-byte root
// plus an 8-byte epoch.
const merkleStateBytes = merkle.HashSize + 8

// flatEntryBytes is one uuid→version entry resident in the enclave (and
// on the wire) under the flat design.
const flatEntryBytes = uuid.Size + 8

// FreshnessSweep measures per-load freshness verification across
// namespace sizes (the 10^3–10^6 sweep), driving the data structures
// directly — the structural costs are a property of the schemes alone,
// independent of the network simulation. mode selects "merkle", "flat",
// or "both". runs loads are verified per cell and averaged; the flat
// side's runs are capped so the largest cells stay tractable (every
// flat load decodes the entire table, which is exactly the point).
func FreshnessSweep(counts []int, mode string, runs int) ([]FreshnessRow, error) {
	switch mode {
	case "merkle", "flat", "both":
	default:
		return nil, fmt.Errorf("bench: unknown freshness mode %q (want merkle|flat|both)", mode)
	}
	if runs < 1 {
		runs = 1
	}
	var rows []FreshnessRow
	for _, n := range counts {
		if n < 2 {
			return nil, fmt.Errorf("bench: freshness sweep size %d too small", n)
		}
		rng := rand.New(rand.NewSource(freshnessSweepSeed ^ int64(n)))
		ids := make([]uuid.UUID, n)
		for i := range ids {
			rng.Read(ids[i][:])
		}
		if mode != "flat" {
			row, err := sweepMerkleLoads(ids, rng, runs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		if mode != "merkle" {
			flatRuns := runs
			// Bound total decode work to ~64M entries per cell.
			if max := 1 + (64 << 20 / n); flatRuns > max {
				flatRuns = max
			}
			row, err := sweepFlatLoads(ids, rng, flatRuns)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// sweepMerkleLoads measures one load verification under the merkle
// scheme: the untrusted side proves the object's leaf, the proof
// crosses the trust boundary encoded, and the enclave decodes and
// verifies it against its 40-byte commitment.
func sweepMerkleLoads(ids []uuid.UUID, rng *rand.Rand, runs int) (FreshnessRow, error) {
	tree := merkle.New()
	for i, id := range ids {
		tree.Set(id, uint64(i+1))
	}
	root := tree.Root()
	var bytes int64
	start := time.Now()
	for i := 0; i < runs; i++ {
		id := ids[rng.Intn(len(ids))]
		enc := tree.Prove(id).Encode()
		bytes += int64(len(enc))
		p, err := merkle.DecodeProof(enc)
		if err != nil {
			return FreshnessRow{}, fmt.Errorf("bench: merkle sweep at n=%d: %w", len(ids), err)
		}
		if _, present, err := p.Verify(root, id); err != nil || !present {
			return FreshnessRow{}, fmt.Errorf("bench: merkle sweep at n=%d: present=%v err=%v", len(ids), present, err)
		}
	}
	elapsed := time.Since(start)
	return FreshnessRow{
		Mode:       "merkle",
		Objects:    len(ids),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(runs),
		BytesPerOp: float64(bytes) / float64(runs),
		StateBytes: merkleStateBytes,
	}, nil
}

// sweepFlatLoads models the flat design's load path: the entire
// uuid→version table crosses the trust boundary and is decoded before
// the one version of interest can be checked. The wire shape mirrors
// the enclave's table object (seq, count, fixed-width entries).
func sweepFlatLoads(ids []uuid.UUID, rng *rand.Rand, runs int) (FreshnessRow, error) {
	w := serial.NewWriter(8 + 4 + len(ids)*flatEntryBytes)
	w.WriteUint64(uint64(len(ids))) // seq
	w.WriteUint32(uint32(len(ids)))
	for i, id := range ids {
		w.WriteRaw(id[:])
		w.WriteUint64(uint64(i + 1))
	}
	blob := w.Bytes()

	var bytes int64
	start := time.Now()
	for i := 0; i < runs; i++ {
		want := ids[rng.Intn(len(ids))]
		bytes += int64(len(blob))
		r := serial.NewReader(blob)
		r.ReadUint64("seq")
		count := r.ReadCount(1<<24, "entries")
		versions := make(map[uuid.UUID]uint64, count)
		var id uuid.UUID
		for j := 0; j < count; j++ {
			r.ReadRawInto(id[:], "id")
			versions[id] = r.ReadUint64("version")
		}
		if err := r.Finish(); err != nil {
			return FreshnessRow{}, fmt.Errorf("bench: flat sweep at n=%d: %w", len(ids), err)
		}
		if _, ok := versions[want]; !ok {
			return FreshnessRow{}, fmt.Errorf("bench: flat sweep at n=%d: lookup missed", len(ids))
		}
	}
	elapsed := time.Since(start)
	return FreshnessRow{
		Mode:       "flat",
		Objects:    len(ids),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(runs),
		BytesPerOp: float64(bytes) / float64(runs),
		StateBytes: int64(len(ids)) * flatEntryBytes,
	}, nil
}

// PrintFreshness renders the freshness-at-scale sweep.
func PrintFreshness(w io.Writer, rows []FreshnessRow) {
	fmt.Fprintln(w, "DESIGN.md §15 — Freshness verification vs namespace size (per metadata load)")
	fmt.Fprintf(w, "%-8s %10s %12s %14s %14s\n", "mode", "objects", "time/op", "bytes/op", "enclave state")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10d %12s %14s %14s\n",
			r.Mode, r.Objects, fmtDur(time.Duration(r.NsPerOp)),
			fmtBytes(int64(r.BytesPerOp)), fmtBytes(r.StateBytes))
	}
	fmt.Fprintln(w)
}

// FreshnessMetrics converts sweep rows into the freshness_scale
// experiment for the JSON report. ProofBytesPerOp carries the evidence
// transfer per load (informational in the compare gate, like wrap
// counts: it moves by design when tree geometry or table shape change).
func FreshnessMetrics(rows []FreshnessRow) Experiment {
	exp := make(Experiment)
	for _, r := range rows {
		exp[fmt.Sprintf("%s_%d_objects", r.Mode, r.Objects)] = Metric{
			NsPerOp:         r.NsPerOp,
			BytesPerOp:      r.BytesPerOp,
			ProofBytesPerOp: r.BytesPerOp,
		}
	}
	return exp
}
