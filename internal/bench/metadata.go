package bench

import (
	"fmt"
	"io"
	"time"

	"nexus"
)

// MetadataRow measures one write-back mode on the metadata-heavy
// workload: open n files with O_CREATE, write a small payload through
// each handle, then close them all. Every operation mutates metadata
// but moves almost no data, so the flush count dominates.
type MetadataRow struct {
	Mode    string // "writeback" or "eager"
	Files   int
	Elapsed time.Duration
	// Flushes is the number of metadata objects sealed and uploaded
	// during the workload; FlushesPerOp divides by the file count.
	Flushes      int64
	FlushesPerOp float64
}

// Metadata quantifies the write-back metadata layer. Each mode runs on
// its own freshly built testbed so caches, flush counters, and the
// store start identical; the workload and seed directory are the same.
func Metadata(base Config, files int) ([]MetadataRow, error) {
	if files <= 0 {
		files = 128
	}
	modes := []struct{ name, knob string }{
		{"writeback", "on"},
		{"eager", "off"},
	}
	rows := make([]MetadataRow, 0, len(modes))
	for _, m := range modes {
		cfg := base
		cfg.Writeback = m.knob
		env, err := NewEnv(cfg)
		if err != nil {
			return nil, fmt.Errorf("metadata %q: %w", m.name, err)
		}
		row, err := runMetadataChurn(env, files, m.name)
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("metadata %q: %w", m.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runMetadataChurn times the NEXUS-side open/write/close sweep and
// reads the enclave's flush counter across it.
func runMetadataChurn(env *Env, files int, mode string) (MetadataRow, error) {
	fs := env.NexusVolume.FS()
	if err := fs.MkdirAll("/metadata"); err != nil {
		return MetadataRow{}, err
	}
	if err := fs.Sync(); err != nil {
		return MetadataRow{}, err
	}
	env.FlushCaches()
	payload := []byte("nexus metadata bench payload, 256B payload target....")
	encl := env.NexusClient.Enclave()
	before := encl.Stats().MetadataFlushes
	start := time.Now()
	handles := make([]*nexus.File, 0, files)
	for i := 0; i < files; i++ {
		f, err := fs.Open(fmt.Sprintf("/metadata/f%06d", i), nexus.O_RDWR|nexus.O_CREATE)
		if err != nil {
			return MetadataRow{}, err
		}
		handles = append(handles, f)
	}
	for _, f := range handles {
		if _, err := f.Write(payload); err != nil {
			return MetadataRow{}, err
		}
	}
	for _, f := range handles {
		if err := f.Close(); err != nil {
			return MetadataRow{}, err
		}
	}
	elapsed := time.Since(start)
	flushes := encl.Stats().MetadataFlushes - before
	return MetadataRow{
		Mode:         mode,
		Files:        files,
		Elapsed:      elapsed,
		Flushes:      flushes,
		FlushesPerOp: float64(flushes) / float64(files),
	}, nil
}

// PrintMetadata renders the write-back comparison table.
func PrintMetadata(w io.Writer, rows []MetadataRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Metadata flushing — create+write+close of %d files (NEXUS side only)\n", rows[0].Files)
	fmt.Fprintf(w, "%-12s %12s %10s %12s\n", "mode", "latency", "flushes", "flushes/op")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12s %10d %11.2f\n", r.Mode, fmtDur(r.Elapsed), r.Flushes, r.FlushesPerOp)
	}
	fmt.Fprintln(w)
}

// MetadataMetrics converts the rows into report metrics keyed by mode.
func MetadataMetrics(rows []MetadataRow) Experiment {
	exp := make(Experiment)
	for _, r := range rows {
		exp[r.Mode] = Metric{
			NsPerOp:      float64(r.Elapsed.Nanoseconds()) / float64(r.Files),
			FlushesPerOp: r.FlushesPerOp,
		}
	}
	return exp
}
