package vfs

import (
	"errors"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/merkle"
	"nexus/internal/uuid"
)

func fsTestUUID(b byte) uuid.UUID {
	var id uuid.UUID
	id[0] = b
	id[15] = ^b
	return id
}

func newTestFreshnessStore(t *testing.T) (*FreshnessStore, enclave.ObjectStore) {
	t.Helper()
	inner := NewVersionedStore(backend.NewMemStore())
	fs, ok := NewFreshnessStore(inner).(interface {
		FreshnessProof(uuid.UUID, uint64) ([]byte, error)
		FreshnessUpdate(uint64, []merkle.LeafUpdate) ([][]byte, error)
	})
	if !ok {
		t.Fatal("NewFreshnessStore lost the proof surface")
	}
	// VersionedStore streams, so the wrapper is the stream variant;
	// reach the embedded FreshnessStore for white-box assertions.
	sfs, ok := fs.(*streamFreshnessStore)
	if !ok {
		t.Fatalf("wrapper over a streaming store is %T, want *streamFreshnessStore", fs)
	}
	return sfs.FreshnessStore, inner
}

// applyBatch pushes one update batch at the store's current epoch and
// folds the returned proofs the way the enclave does, returning the
// root every proof chain converges to.
func applyBatch(t *testing.T, s *FreshnessStore, epoch uint64, root [32]byte, batch []merkle.LeafUpdate) [32]byte {
	t.Helper()
	proofs, err := s.FreshnessUpdate(epoch, batch)
	if err != nil {
		t.Fatalf("FreshnessUpdate(%d): %v", epoch, err)
	}
	if len(proofs) != len(batch) {
		t.Fatalf("%d proofs for %d updates", len(proofs), len(batch))
	}
	for i, raw := range proofs {
		p, err := merkle.DecodeProof(raw)
		if err != nil {
			t.Fatalf("proof %d: %v", i, err)
		}
		if root, err = p.NewRoot(root, batch[i].ID, batch[i].Version); err != nil {
			t.Fatalf("folding proof %d: %v", i, err)
		}
	}
	return root
}

func TestFreshnessStoreProofAndUpdateRoundTrip(t *testing.T) {
	s, _ := newTestFreshnessStore(t)

	// Empty store: absence proof at epoch 0 against the empty root.
	raw, err := s.FreshnessProof(fsTestUUID(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := merkle.DecodeProof(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, present, err := p.Verify(merkle.EmptyRoot(), fsTestUUID(1)); err != nil || present {
		t.Fatalf("empty-store proof: present=%v err=%v", present, err)
	}

	root := merkle.EmptyRoot()
	root = applyBatch(t, s, 0, root, []merkle.LeafUpdate{
		{ID: fsTestUUID(1), Version: 3},
		{ID: fsTestUUID(2), Version: 1},
	})
	root = applyBatch(t, s, 1, root, []merkle.LeafUpdate{
		{ID: fsTestUUID(2), Version: 2},
		{ID: fsTestUUID(3), Version: 9},
	})

	// Proofs at the current epoch verify against the folded root.
	for id, want := range map[byte]uint64{1: 3, 2: 2, 3: 9} {
		raw, err := s.FreshnessProof(fsTestUUID(id), 2)
		if err != nil {
			t.Fatal(err)
		}
		p, err := merkle.DecodeProof(raw)
		if err != nil {
			t.Fatal(err)
		}
		v, present, err := p.Verify(root, fsTestUUID(id))
		if err != nil || !present || v != want {
			t.Fatalf("leaf %d: v=%d present=%v err=%v, want v=%d", id, v, present, err, want)
		}
	}
}

func TestFreshnessStoreServesPreviousEpoch(t *testing.T) {
	s, _ := newTestFreshnessStore(t)
	root0 := merkle.EmptyRoot()
	root1 := applyBatch(t, s, 0, root0, []merkle.LeafUpdate{{ID: fsTestUUID(1), Version: 1}})
	root2 := applyBatch(t, s, 1, root1, []merkle.LeafUpdate{
		{ID: fsTestUUID(1), Version: 2},
		{ID: fsTestUUID(4), Version: 1},
	})

	// The epoch-1 view (an enclave whose sealed root put crashed) is
	// reconstructed from the undo log.
	raw, err := s.FreshnessProof(fsTestUUID(1), 1)
	if err != nil {
		t.Fatalf("previous-epoch proof: %v", err)
	}
	p, err := merkle.DecodeProof(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v, present, err := p.Verify(root1, fsTestUUID(1)); err != nil || !present || v != 1 {
		t.Fatalf("epoch-1 leaf: v=%d present=%v err=%v", v, present, err)
	}
	// And the current epoch still verifies against the newest root.
	raw, err = s.FreshnessProof(fsTestUUID(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p, err = merkle.DecodeProof(raw); err != nil {
		t.Fatal(err)
	}
	if v, present, err := p.Verify(root2, fsTestUUID(4)); err != nil || !present || v != 1 {
		t.Fatalf("epoch-2 leaf: v=%d present=%v err=%v", v, present, err)
	}

	// Two epochs back is genuinely gone.
	if _, err := s.FreshnessProof(fsTestUUID(1), 0); !errors.Is(err, ErrEpochUnavailable) {
		t.Fatalf("epoch-0 proof = %v, want ErrEpochUnavailable", err)
	}
}

func TestFreshnessStoreRewindsInterruptedBatch(t *testing.T) {
	s, _ := newTestFreshnessStore(t)
	root0 := merkle.EmptyRoot()
	root1 := applyBatch(t, s, 0, root0, []merkle.LeafUpdate{{ID: fsTestUUID(1), Version: 1}})
	// The tree advanced to epoch 2 but the enclave's sealed root never
	// did (crash between the two writes): the retried batch arrives at
	// epoch 1 again, and must converge on the same root.
	rootA := applyBatch(t, s, 1, root1, []merkle.LeafUpdate{{ID: fsTestUUID(2), Version: 5}})
	rootB := applyBatch(t, s, 1, root1, []merkle.LeafUpdate{{ID: fsTestUUID(2), Version: 5}})
	if rootA != rootB {
		t.Fatal("retried batch did not converge on the same root")
	}
	raw, err := s.FreshnessProof(fsTestUUID(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := merkle.DecodeProof(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v, present, err := p.Verify(rootA, fsTestUUID(2)); err != nil || !present || v != 5 {
		t.Fatalf("post-rewind leaf: v=%d present=%v err=%v", v, present, err)
	}
}

func TestFreshnessStoreSnapshotPersistsAcrossWrappers(t *testing.T) {
	s, inner := newTestFreshnessStore(t)
	root := applyBatch(t, s, 0, merkle.EmptyRoot(), []merkle.LeafUpdate{
		{ID: fsTestUUID(1), Version: 1},
		{ID: fsTestUUID(2), Version: 2},
	})

	// A fresh wrapper over the same inner store (server restart) must
	// reload the snapshot — including the undo log, so it still serves
	// the previous epoch.
	s2, ok := NewFreshnessStore(inner).(*streamFreshnessStore)
	if !ok {
		t.Fatal("fresh wrapper is not the stream variant")
	}
	raw, err := s2.FreshnessProof(fsTestUUID(2), 1)
	if err != nil {
		t.Fatalf("reloaded proof: %v", err)
	}
	p, err := merkle.DecodeProof(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v, present, err := p.Verify(root, fsTestUUID(2)); err != nil || !present || v != 2 {
		t.Fatalf("reloaded leaf: v=%d present=%v err=%v", v, present, err)
	}
	prevRaw, err := s2.FreshnessProof(fsTestUUID(2), 0)
	if err != nil {
		t.Fatalf("reloaded previous-epoch proof: %v", err)
	}
	if p, err = merkle.DecodeProof(prevRaw); err != nil {
		t.Fatal(err)
	}
	if _, present, err := p.Verify(merkle.EmptyRoot(), fsTestUUID(2)); err != nil || present {
		t.Fatalf("reloaded epoch-0 absence: present=%v err=%v", present, err)
	}
}

func TestFreshnessStoreSnapshotDecodeRejectsGarbage(t *testing.T) {
	s, inner := newTestFreshnessStore(t)
	applyBatch(t, s, 0, merkle.EmptyRoot(), []merkle.LeafUpdate{{ID: fsTestUUID(1), Version: 1}})
	blob, _, err := inner.GetVersioned(FreshnessTreeObjectName)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string][]byte{
		"empty":      {},
		"bad format": append([]byte{99}, blob[1:]...),
		"truncated":  blob[:len(blob)-1],
	} {
		if _, err := inner.PutVersioned(FreshnessTreeObjectName, mut); err != nil {
			t.Fatal(err)
		}
		s2, ok := NewFreshnessStore(inner).(*streamFreshnessStore)
		if !ok {
			t.Fatal("fresh wrapper is not the stream variant")
		}
		if _, err := s2.FreshnessProof(fsTestUUID(1), 1); err == nil {
			t.Errorf("%s snapshot: proof served from garbage", name)
		}
	}
}

func TestFreshnessStoreUpdateAtWrongEpoch(t *testing.T) {
	s, _ := newTestFreshnessStore(t)
	applyBatch(t, s, 0, merkle.EmptyRoot(), []merkle.LeafUpdate{{ID: fsTestUUID(1), Version: 1}})
	if _, err := s.FreshnessUpdate(7, []merkle.LeafUpdate{{ID: fsTestUUID(2), Version: 1}}); !errors.Is(err, ErrEpochUnavailable) {
		t.Fatalf("future-epoch update = %v, want ErrEpochUnavailable", err)
	}
}
