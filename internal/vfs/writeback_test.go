package vfs

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/sgx"
)

// newWritebackPair builds two enclaves on one platform over a shared
// store: a write-back FS (the writer) and an eager reader enclave — the
// other-machine view that only sees what the store holds.
func newWritebackPair(t *testing.T) (*FS, *enclave.Enclave) {
	t.Helper()
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	image := sgx.Image{Name: "nexus-enclave", Version: 1, Code: []byte("test")}
	store := NewVersionedStore(backend.NewMemStore())
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	writerBox, err := platform.CreateEnclave(image)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := enclave.New(enclave.Config{SGX: writerBox, Store: store, Writeback: enclave.WritebackOn})
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := writer.CreateVolume("owner", pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := writer.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	auth := func(e *enclave.Enclave) {
		nonce, blob, err := e.BeginAuth(pub, sealed, volID)
		if err != nil {
			t.Fatal(err)
		}
		msg := append(append([]byte(nil), nonce...), blob...)
		if err := e.CompleteAuth(ed25519.Sign(priv, msg)); err != nil {
			t.Fatal(err)
		}
	}
	auth(writer)

	readerBox, err := platform.CreateEnclave(image)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := enclave.New(enclave.Config{SGX: readerBox, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	auth(reader)
	return New(writer), reader
}

// TestWritebackCloseIsBarrier: with write-back on, a file created via an
// open handle is invisible to another enclave until the handle closes;
// Close drains the dirty set and publishes it.
func TestWritebackCloseIsBarrier(t *testing.T) {
	fs, reader := newWritebackPair(t)

	f, err := fs.Open("/doc", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("draft")); err != nil {
		t.Fatal(err)
	}
	reader.DropCaches()
	if _, err := reader.ReadFile("/doc"); !errors.Is(err, enclave.ErrNotFound) {
		t.Fatalf("pre-barrier read = %v, want ErrNotFound (metadata leaked before the barrier)", err)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reader.DropCaches()
	got, err := reader.ReadFile("/doc")
	if err != nil {
		t.Fatalf("post-Close read: %v", err)
	}
	if string(got) != "draft" {
		t.Fatalf("post-Close read = %q, want %q", got, "draft")
	}
}

// TestWritebackFSSyncIsBarrier: FS.Sync publishes mutations made through
// path-level ops that batch (Touch via Open is covered above; here a
// directory create).
func TestWritebackFSSyncIsBarrier(t *testing.T) {
	fs, reader := newWritebackPair(t)

	// Mkdir batches in write-back mode; the reader must not see it yet.
	if err := fs.Mkdir("/inbox"); err != nil {
		t.Fatal(err)
	}
	reader.DropCaches()
	if _, err := reader.Filldir("/inbox"); !errors.Is(err, enclave.ErrNotFound) {
		t.Fatalf("pre-Sync Filldir = %v, want ErrNotFound", err)
	}

	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	reader.DropCaches()
	if _, err := reader.Filldir("/inbox"); err != nil {
		t.Fatalf("post-Sync Filldir: %v", err)
	}
}
