package vfs

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"sync"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/sgx"
)

// flakyStore wraps a backend.Store and fails operations with a scripted
// storage-substrate error while armed, modelling the typed failures the
// AFS client surfaces when its server is unreachable.
type flakyStore struct {
	backend.Store

	mu     sync.Mutex
	getErr error // returned by Get while set; guarded by mu
	putErr error // returned by Put while set; guarded by mu
}

func (s *flakyStore) fail(getErr, putErr error) {
	s.mu.Lock()
	s.getErr, s.putErr = getErr, putErr
	s.mu.Unlock()
}

func (s *flakyStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	err := s.getErr
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.Store.Get(name)
}

func (s *flakyStore) Put(name string, data []byte) error {
	s.mu.Lock()
	err := s.putErr
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.Store.Put(name, data)
}

// newFlakyFS builds a mounted FS whose backing store can be made to fail
// on demand.
func newFlakyFS(t *testing.T) (*FS, *flakyStore) {
	t.Helper()
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	container, err := platform.CreateEnclave(sgx.Image{Name: "nexus-enclave", Version: 1, Code: []byte("test")})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyStore{Store: backend.NewMemStore()}
	encl, err := enclave.New(enclave.Config{SGX: container, Store: NewVersionedStore(flaky)})
	if err != nil {
		t.Fatal(err)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := encl.CreateVolume("owner", pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := encl.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	nonce, blob, err := encl.BeginAuth(pub, sealed, volID)
	if err != nil {
		t.Fatal(err)
	}
	msg := append(append([]byte(nil), nonce...), blob...)
	if err := encl.CompleteAuth(ed25519.Sign(priv, msg)); err != nil {
		t.Fatal(err)
	}
	return New(encl), flaky
}

// Storage faults must reach applications as typed, matchable errors:
// the enclave sentinel on top, the backend sentinel underneath.
func TestStoreFaultsSurfaceTyped(t *testing.T) {
	fs, flaky := newFlakyFS(t)
	if err := fs.WriteFile("/pre", []byte("before the outage")); err != nil {
		t.Fatal(err)
	}

	flaky.fail(backend.ErrTimeout, backend.ErrUnavailable)
	_, err := fs.ReadFile("/pre")
	if err == nil {
		t.Fatal("read through a dead store succeeded")
	}
	if !errors.Is(err, enclave.ErrStoreUnavailable) {
		t.Errorf("read error lacks enclave.ErrStoreUnavailable: %v", err)
	}
	if !errors.Is(err, backend.ErrTimeout) {
		t.Errorf("read error lost the backend sentinel: %v", err)
	}
	if !IsUnavailable(err) {
		t.Errorf("vfs.IsUnavailable = false for %v", err)
	}
	if err := fs.WriteFile("/during", []byte("x")); err == nil {
		t.Fatal("write through a dead store succeeded")
	} else if !IsUnavailable(err) {
		t.Errorf("write error not classified unavailable: %v", err)
	}

	// Non-fault errors must not be classified as substrate failures.
	flaky.fail(nil, nil)
	if _, err := fs.ReadFile("/never-created"); err == nil || IsUnavailable(err) {
		t.Errorf("plain not-found classified unavailable: %v", err)
	}
}

// An open handle must survive a Close that fails on an unavailable
// store: the buffered data is the only copy, so the handle stays open
// and a later Close succeeds once the service recovers.
func TestCloseRetryableWhileStoreUnavailable(t *testing.T) {
	fs, flaky := newFlakyFS(t)
	f, err := fs.Open("/doc", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("must not be lost to a flaky network")
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}

	flaky.fail(nil, backend.ErrInterrupted)
	err = f.Close()
	if err == nil {
		t.Fatal("close through a dead store succeeded")
	}
	if !IsUnavailable(err) {
		t.Fatalf("close error not classified unavailable: %v", err)
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("failed close discarded the buffer: size %d", f.Size())
	}

	// The service heals; the same handle closes cleanly and the data is
	// durable.
	flaky.fail(nil, nil)
	if err := f.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	got, err := fs.ReadFile("/doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}
