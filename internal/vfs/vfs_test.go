package vfs

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/sgx"
)

// newTestFS builds a mounted FS over a memory store.
func newTestFS(t *testing.T) *FS {
	t.Helper()
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	container, err := platform.CreateEnclave(sgx.Image{Name: "nexus-enclave", Version: 1, Code: []byte("test")})
	if err != nil {
		t.Fatal(err)
	}
	store := NewVersionedStore(backend.NewMemStore())
	encl, err := enclave.New(enclave.Config{SGX: container, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := encl.CreateVolume("owner", pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := encl.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	nonce, blob, err := encl.BeginAuth(pub, sealed, volID)
	if err != nil {
		t.Fatal(err)
	}
	msg := append(append([]byte(nil), nonce...), blob...)
	if err := encl.CompleteAuth(ed25519.Sign(priv, msg)); err != nil {
		t.Fatal(err)
	}
	return New(encl)
}

func TestVersionedStoreVersions(t *testing.T) {
	s := NewVersionedStore(backend.NewMemStore())
	if _, err := s.PutVersioned("a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	_, v1, err := s.GetVersioned("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutVersioned("a", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	_, v2, err := s.GetVersioned("a")
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatalf("version did not increase: %d then %d", v1, v2)
	}
}

func TestVersionedStoreDeleteDropsVersion(t *testing.T) {
	s := NewVersionedStore(backend.NewMemStore())
	if _, err := s.PutVersioned("cas-abc", []byte("chunk")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("cas-abc"); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	_, tracked := s.versions["cas-abc"]
	s.mu.Unlock()
	if tracked {
		t.Fatal("version counter survived Delete; the map would grow by one entry per GC-churned chunk")
	}
	// Recreation restarts versioning cleanly.
	v, err := s.PutVersioned("cas-abc", []byte("chunk"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("recreated object got version %d, want 1", v)
	}
}

func TestMkdirAllAndRemoveAll(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	// Idempotent.
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatalf("MkdirAll twice: %v", err)
	}
	if err := fs.WriteFile("/a/b/c/d/f1", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/x", []byte("2")); err != nil {
		t.Fatal(err)
	}

	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatalf("RemoveAll: %v", err)
	}
	if ok, err := fs.Exists("/a"); err != nil || ok {
		t.Fatalf("Exists(/a) after RemoveAll = %v, %v", ok, err)
	}
	// Missing path is not an error.
	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatalf("RemoveAll(missing): %v", err)
	}
}

func TestWriteFileCreates(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile("/new.txt", []byte("created")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := fs.ReadFile("/new.txt")
	if err != nil || string(got) != "created" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// Overwrite.
	if err := fs.WriteFile("/new.txt", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	got, err = fs.ReadFile("/new.txt")
	if err != nil || string(got) != "replaced" {
		t.Fatalf("ReadFile after overwrite = %q, %v", got, err)
	}
}

func TestWalk(t *testing.T) {
	fs := newTestFS(t)
	for _, p := range []string{"/w/a", "/w/b/c"} {
		if err := fs.MkdirAll(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []string{"/w/f1", "/w/a/f2", "/w/b/c/f3"} {
		if err := fs.WriteFile(f, []byte(f)); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	err := fs.Walk("/w", func(p string, entry DirEntry) error {
		visited = append(visited, p)
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	want := []string{"/w", "/w/a", "/w/a/f2", "/w/b", "/w/b/c", "/w/b/c/f3", "/w/f1"}
	if len(visited) != len(want) {
		t.Fatalf("Walk visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("Walk order %v, want %v", visited, want)
		}
	}
}

func TestFileHandleReadWrite(t *testing.T) {
	fs := newTestFS(t)
	f, err := fs.Open("/file", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen and read.
	f, err = fs.Open("/file", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	// Seek and partial read.
	if _, err := f.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if n, err := f.Read(buf); err != nil || n != 5 || string(buf) != "world" {
		t.Fatalf("Read after Seek = %q, %d, %v", buf, n, err)
	}
	if _, err := f.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("Read at EOF = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileHandleOpenSemantics(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile("/f", []byte("original")); err != nil {
		t.Fatal(err)
	}

	// O_TRUNC discards contents.
	f, err := fs.Open("/f", O_RDWR|O_TRUNC)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Fatalf("Size after O_TRUNC = %d", f.Size())
	}
	if _, err := f.Write([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// O_APPEND starts at EOF.
	f, err = fs.Open("/f", O_RDWR|O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || string(got) != "new+more" {
		t.Fatalf("after append = %q, %v", got, err)
	}

	// Missing file without O_CREATE.
	if _, err := fs.Open("/missing", O_RDONLY); !errors.Is(err, enclave.ErrNotFound) {
		t.Fatalf("Open missing = %v", err)
	}
	// Read-only handle rejects writes.
	f, err = fs.Open("/f", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write on O_RDONLY handle accepted")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileHandleSyncVisibility(t *testing.T) {
	fs := newTestFS(t)
	f, err := fs.Open("/db.log", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("record1")); err != nil {
		t.Fatal(err)
	}
	// Before Sync the store holds the old (empty) contents.
	got, err := fs.ReadFile("/db.log")
	if err != nil || len(got) != 0 {
		t.Fatalf("pre-sync read = %q, %v", got, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err = fs.ReadFile("/db.log")
	if err != nil || string(got) != "record1" {
		t.Fatalf("post-sync read = %q, %v", got, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileHandleTruncateAndReadAt(t *testing.T) {
	fs := newTestFS(t)
	f, err := fs.Open("/f", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("Size after truncate = %d", f.Size())
	}
	if err := f.Truncate(8); err != nil { // zero-extend
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{'2', '3', 0, 0}) {
		t.Fatalf("ReadAt = %v", buf)
	}
	if _, err := f.ReadAt(buf, 100); !errors.Is(err, io.EOF) {
		t.Fatalf("ReadAt past EOF = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Operations on closed handles fail cleanly.
	if _, err := f.Read(buf); err == nil {
		t.Fatal("read of closed handle accepted")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := newTestFS(t)
	for i := 9; i >= 0; i-- {
		if err := fs.WriteFile(fmt.Sprintf("/f%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := fs.ReadDir("/")
	if err != nil || len(entries) != 10 {
		t.Fatalf("ReadDir = %d entries, %v", len(entries), err)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Fatal("ReadDir not sorted")
		}
	}
}
