// Package vfs is the untrusted portion of NEXUS: the filesystem facade
// that user applications (and this repository's database engines,
// workload generators, and Linux-utility reimplementations) program
// against.
//
// It corresponds to the prototype's userspace daemon and shim layer
// (DSN'19 §V): requests are forwarded into the enclave through the
// filesystem API of Table I, and the enclave's storage I/O flows back
// out through the ObjectStore ocall surface. The facade adds the
// conveniences a POSIX-ish consumer expects — MkdirAll, RemoveAll,
// WriteFile-with-create — and open-to-close file handles matching AFS
// semantics: a file is fetched and decrypted at open, operated on
// locally, and re-encrypted and stored at close.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"nexus/internal/acl"
	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/metadata"
	"nexus/internal/obs"
)

// VersionedStore adapts a plain backend.Store to the enclave's versioned
// ObjectStore ocall surface by tracking update counters locally. The AFS
// client implements the surface natively (versions come from the
// server); this adapter covers local directory and in-memory volumes.
type VersionedStore struct {
	store  backend.Store
	tracer *obs.Tracer

	mu       sync.Mutex
	versions map[string]uint64 // guarded by mu
}

var (
	_ enclave.ObjectStore       = (*VersionedStore)(nil)
	_ enclave.StreamObjectStore = (*VersionedStore)(nil)
)

// NewVersionedStore wraps store.
func NewVersionedStore(store backend.Store) *VersionedStore {
	return &VersionedStore{store: store, versions: make(map[string]uint64)}
}

// Instrument attaches the registry's tracer so each store operation
// opens a span under whatever ecall span is active. The enclave calls
// this at construction for any store that exposes it (this is the
// ocall surface of the paper: the only place enclave I/O touches the
// untrusted world, so it is where storage latency is attributed).
func (s *VersionedStore) Instrument(reg *obs.Registry) { s.tracer = reg.Tracer() }

func (s *VersionedStore) span(name string) *obs.Span {
	if s.tracer == nil {
		return nil // Span methods are nil-safe
	}
	return s.tracer.Begin(name)
}

// GetVersioned implements enclave.ObjectStore.
func (s *VersionedStore) GetVersioned(name string) ([]byte, uint64, error) {
	defer s.span("store.get").End()
	data, err := s.store.Get(name)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	v := s.versions[name]
	s.mu.Unlock()
	return data, v, nil
}

// PutVersioned implements enclave.ObjectStore.
func (s *VersionedStore) PutVersioned(name string, data []byte) (uint64, error) {
	defer s.span("store.put").End()
	if err := s.store.Put(name, data); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.versions[name]++
	v := s.versions[name]
	s.mu.Unlock()
	return v, nil
}

// PutVersionedStream implements enclave.StreamObjectStore by draining
// the segment stream into one buffer and delegating to PutVersioned.
// Local volumes have no transfer to overlap, so there is nothing to
// gain from true streaming here — the adapter exists so the enclave's
// encrypt-while-upload path is exercised (and testable) on local and
// in-memory volumes, not just behind a live AFS client. The drained
// copy is mandatory anyway: segment buffers belong to the producer and
// are reused after the call returns.
func (s *VersionedStore) PutVersionedStream(name string, total int, next func() ([]byte, error)) (uint64, error) {
	defer s.span("store.put.stream").End()
	buf := make([]byte, 0, total)
	for {
		seg, err := next()
		if err != nil {
			return 0, err
		}
		if seg == nil {
			break
		}
		buf = append(buf, seg...)
	}
	if len(buf) != total {
		return 0, fmt.Errorf("vfs: streamed put %s: got %d bytes, announced %d", name, len(buf), total)
	}
	return s.PutVersioned(name, buf)
}

// Delete implements enclave.ObjectStore. The version counter is dropped
// with the object: uuid-named metadata objects never reuse a name, and
// content-addressed chunk objects ("cas-…") may be garbage-collected and
// later recreated when the same content reappears — they are immutable
// and self-authenticating, so a version restarting at 1 is harmless,
// while keeping counters for deleted names would grow the map by one
// entry per churned chunk for the life of the mount.
func (s *VersionedStore) Delete(name string) error {
	defer s.span("store.delete").End()
	if err := s.store.Delete(name); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.versions, name)
	s.mu.Unlock()
	return nil
}

// Lock implements enclave.ObjectStore.
func (s *VersionedStore) Lock(name string) (func(), error) {
	defer s.span("store.lock").End()
	return s.store.Lock(name)
}

// DirEntry is a directory listing entry.
type DirEntry struct {
	Name string
	// IsDir reports directories; Symlink entries report their target.
	IsDir         bool
	IsSymlink     bool
	SymlinkTarget string
	Size          uint64
}

// FS is the user-facing filesystem over a mounted NEXUS volume.
type FS struct {
	e       *enclave.Enclave
	metrics vfsMetrics
}

// vfsMetrics instruments the facade's top-level operations: each op gets
// a count and a latency histogram, and — when tracing is enabled — a
// root span under which the enclave and storage layers hang their own.
type vfsMetrics struct {
	opens, reads, writes, closes, syncs, setacls *obs.Counter

	openLat, readLat, writeLat, closeLat, syncLat, setaclLat *obs.Histogram

	tracer *obs.Tracer
}

func (m *vfsMetrics) bind(reg *obs.Registry) {
	m.opens = reg.Counter("vfs_open_total")
	m.reads = reg.Counter("vfs_read_total")
	m.writes = reg.Counter("vfs_write_total")
	m.closes = reg.Counter("vfs_close_total")
	m.syncs = reg.Counter("vfs_sync_total")
	m.setacls = reg.Counter("vfs_setacl_total")
	m.openLat = reg.Histogram("vfs_open_seconds")
	m.readLat = reg.Histogram("vfs_read_seconds")
	m.writeLat = reg.Histogram("vfs_write_seconds")
	m.closeLat = reg.Histogram("vfs_close_seconds")
	m.syncLat = reg.Histogram("vfs_sync_seconds")
	m.setaclLat = reg.Histogram("vfs_setacl_seconds")
	m.tracer = reg.Tracer()
}

// New wraps a mounted, authenticated enclave. The facade records into
// the enclave's observability registry so one registry carries the whole
// vfs → enclave → storage stack.
func New(e *enclave.Enclave) *FS {
	fs := &FS{e: e}
	fs.metrics.bind(e.Obs())
	return fs
}

// Enclave exposes the underlying enclave for administrative operations
// (user and ACL management) and statistics.
func (fs *FS) Enclave() *enclave.Enclave { return fs.e }

// Mkdir creates one directory; the parent must exist.
func (fs *FS) Mkdir(p string) error { return fs.e.Mkdir(p) }

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	parts := strings.Split(strings.Trim(p, "/"), "/")
	cur := ""
	for _, part := range parts {
		cur = cur + "/" + part
		err := fs.e.Mkdir(cur)
		if err != nil && !errors.Is(err, enclave.ErrExists) {
			return err
		}
	}
	return nil
}

// Touch creates an empty file; the parent directory must exist.
func (fs *FS) Touch(p string) error { return fs.e.Touch(p) }

// WriteFile writes data to the file at p, creating it if necessary.
func (fs *FS) WriteFile(p string, data []byte) error {
	span := fs.metrics.tracer.Begin("vfs.write")
	start := time.Now()
	defer func() {
		fs.metrics.writes.Inc()
		fs.metrics.writeLat.Record(time.Since(start))
		span.End()
	}()
	err := fs.e.WriteFile(p, data)
	if errors.Is(err, enclave.ErrNotFound) {
		if err := fs.e.Touch(p); err != nil && !errors.Is(err, enclave.ErrExists) {
			return err
		}
		err = fs.e.WriteFile(p, data)
	}
	if err != nil {
		return err
	}
	// The path-level one-shot write is a durability point: callers have
	// no handle to Sync/Close later, so deferred metadata (the create
	// itself, in write-back mode) drains before we report success.
	return fs.e.SyncMetadata()
}

// Sync drains any write-back metadata pending in the enclave to the
// store (a volume-wide metadata barrier; no-op in eager mode). File
// data buffered in open handles is not touched — use File.Sync.
func (fs *FS) Sync() error { return fs.e.SyncMetadata() }

// ReadFile returns the file's contents.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	span := fs.metrics.tracer.Begin("vfs.read")
	start := time.Now()
	defer func() {
		fs.metrics.reads.Inc()
		fs.metrics.readLat.Record(time.Since(start))
		span.End()
	}()
	return fs.e.ReadFile(p)
}

// Remove deletes a file, symlink, or empty directory.
func (fs *FS) Remove(p string) error { return fs.e.Remove(p) }

// RemoveAll deletes p and, for directories, everything beneath it. A
// missing path is not an error.
func (fs *FS) RemoveAll(p string) error {
	st, err := fs.e.Lookup(p)
	if errors.Is(err, enclave.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	if st.Kind == metadata.KindDir {
		entries, err := fs.e.Filldir(p)
		if err != nil {
			return err
		}
		for _, entry := range entries {
			if err := fs.RemoveAll(path.Join(p, entry.Name)); err != nil {
				return err
			}
		}
	}
	return fs.e.Remove(p)
}

// Rename moves a file or directory; existing files at the destination
// are replaced.
func (fs *FS) Rename(oldPath, newPath string) error { return fs.e.Rename(oldPath, newPath) }

// Symlink creates a symbolic link.
func (fs *FS) Symlink(target, linkPath string) error { return fs.e.Symlink(target, linkPath) }

// Hardlink creates an additional name for an existing file.
func (fs *FS) Hardlink(existing, newPath string) error { return fs.e.Hardlink(existing, newPath) }

// Stat describes the entry at p.
func (fs *FS) Stat(p string) (DirEntry, error) {
	st, err := fs.e.Lookup(p)
	if err != nil {
		return DirEntry{}, err
	}
	return DirEntry{
		Name:          st.Name,
		IsDir:         st.Kind == metadata.KindDir,
		IsSymlink:     st.Kind == metadata.KindSymlink,
		SymlinkTarget: st.SymlinkTarget,
		Size:          st.Size,
	}, nil
}

// Exists reports whether p names an entry.
func (fs *FS) Exists(p string) (bool, error) {
	_, err := fs.e.Lookup(p)
	if errors.Is(err, enclave.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// ReadDir lists a directory, sorted by name. Sizes are not populated
// (they require a filenode fetch per file; use Stat for one file).
func (fs *FS) ReadDir(p string) ([]DirEntry, error) {
	stats, err := fs.e.Filldir(p)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, 0, len(stats))
	for _, st := range stats {
		out = append(out, DirEntry{
			Name:          st.Name,
			IsDir:         st.Kind == metadata.KindDir,
			IsSymlink:     st.Kind == metadata.KindSymlink,
			SymlinkTarget: st.SymlinkTarget,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Walk calls fn for every entry under root (depth-first, lexical order),
// with the entry's full path. fn may return ErrSkipDir for directories.
func (fs *FS) Walk(root string, fn func(p string, entry DirEntry) error) error {
	st, err := fs.Stat(root)
	if err != nil {
		return err
	}
	if err := fn(path.Clean("/"+root), st); err != nil {
		if errors.Is(err, ErrSkipDir) && st.IsDir {
			return nil
		}
		return err
	}
	if !st.IsDir {
		return nil
	}
	entries, err := fs.ReadDir(root)
	if err != nil {
		return err
	}
	for _, entry := range entries {
		child := path.Join(root, entry.Name)
		if entry.IsDir {
			if err := fs.Walk(child, fn); err != nil {
				return err
			}
			continue
		}
		childStat, err := fs.Stat(child)
		if err != nil {
			return err
		}
		if err := fn(path.Clean("/"+child), childStat); err != nil {
			if errors.Is(err, ErrSkipDir) {
				continue
			}
			return err
		}
	}
	return nil
}

// ErrSkipDir tells Walk to skip a directory's contents.
var ErrSkipDir = errors.New("vfs: skip directory")

// IsUnavailable reports whether err is a storage-substrate failure —
// the backing service unreachable, an operation past its deadline, or a
// mutating exchange interrupted with unknown outcome. Applications can
// treat these as transient: the data buffered in an open handle is
// intact and the operation may be retried (see File.Close).
func IsUnavailable(err error) bool {
	return errors.Is(err, enclave.ErrStoreUnavailable) || backend.IsUnavailable(err)
}

// SetACL grants rights to a user on a directory (acl.None revokes).
func (fs *FS) SetACL(dirPath, userName string, rights acl.Rights) error {
	span := fs.metrics.tracer.Begin("vfs.setacl")
	start := time.Now()
	defer func() {
		fs.metrics.setacls.Inc()
		fs.metrics.setaclLat.Record(time.Since(start))
		span.End()
	}()
	return fs.e.SetACL(dirPath, userName, rights)
}

// GetACL returns a directory's ACL keyed by username.
func (fs *FS) GetACL(dirPath string) (map[string]acl.Rights, error) {
	return fs.e.GetACL(dirPath)
}

// Open flags, mirroring the os package subset the handle supports.
const (
	O_RDONLY = 0x0
	O_RDWR   = 0x2
	O_CREATE = 0x40
	O_TRUNC  = 0x200
	O_APPEND = 0x400
)

// File is an open-to-close file handle: contents are fetched and
// decrypted once at Open, all reads and writes are local, and dirty
// contents are re-encrypted and stored at Close (or Sync) — exactly the
// session semantics AFS gives the prototype (§VII-A).
type File struct {
	fs    *FS
	path  string
	flags int

	mu    sync.Mutex
	buf   []byte
	pos   int64
	dirty bool
	open  bool
}

// Open opens the file at p.
func (fs *FS) Open(p string, flags int) (*File, error) {
	span := fs.metrics.tracer.Begin("vfs.open")
	start := time.Now()
	defer func() {
		fs.metrics.opens.Inc()
		fs.metrics.openLat.Record(time.Since(start))
		span.End()
	}()
	f := &File{fs: fs, path: p, flags: flags, open: true}
	data, err := fs.e.ReadFile(p)
	switch {
	case err == nil:
		if flags&O_TRUNC == 0 {
			f.buf = data
		} else {
			f.dirty = true
		}
	case errors.Is(err, enclave.ErrNotFound) && flags&O_CREATE != 0:
		if err := fs.e.Touch(p); err != nil && !errors.Is(err, enclave.ErrExists) {
			return nil, err
		}
		f.dirty = true
	default:
		return nil, err
	}
	if flags&O_APPEND != 0 {
		f.pos = int64(len(f.buf))
	}
	return f, nil
}

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.open {
		return 0, fmt.Errorf("vfs: read of closed file %s", f.path)
	}
	if f.pos >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.pos:])
	f.pos += int64(n)
	return n, nil
}

// ReadAt implements io.ReaderAt.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.open {
		return 0, fmt.Errorf("vfs: read of closed file %s", f.path)
	}
	if off < 0 || off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write implements io.Writer.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.open {
		return 0, fmt.Errorf("vfs: write to closed file %s", f.path)
	}
	if f.flags&O_RDWR == 0 && f.flags&O_APPEND == 0 {
		return 0, fmt.Errorf("vfs: file %s not open for writing", f.path)
	}
	end := f.pos + int64(len(p))
	if end > int64(len(f.buf)) {
		grown := make([]byte, end)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[f.pos:end], p)
	f.pos = end
	f.dirty = true
	return len(p), nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.buf))
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("vfs: negative seek position")
	}
	f.pos = pos
	return pos, nil
}

// Truncate resizes the buffered contents.
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("vfs: negative truncate size")
	}
	switch {
	case size < int64(len(f.buf)):
		f.buf = f.buf[:size]
	case size > int64(len(f.buf)):
		grown := make([]byte, size)
		copy(grown, f.buf)
		f.buf = grown
	}
	f.dirty = true
	return nil
}

// Size returns the buffered length.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.buf))
}

// Sync encrypts and uploads dirty contents without closing the handle
// (fsync; the file's chunks are re-keyed, §VI-A).
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := &f.fs.metrics
	span := m.tracer.Begin("vfs.sync")
	start := time.Now()
	defer func() {
		m.syncs.Inc()
		m.syncLat.Record(time.Since(start))
		span.End()
	}()
	return f.syncLocked()
}

func (f *File) syncLocked() error {
	if f.dirty {
		if err := f.fs.e.WriteFile(f.path, f.buf); err != nil {
			return err
		}
		f.dirty = false
	}
	// Sync/Close are metadata barriers even when the buffer is clean:
	// the create that backs this handle may still be deferred in the
	// enclave's dirty set (write-back mode). The drain is idempotent and
	// retryable, so Close's stay-open-on-unavailable contract holds.
	return f.fs.e.SyncMetadata()
}

// Close flushes dirty contents and invalidates the handle. If the flush
// fails because the storage substrate is unavailable (IsUnavailable),
// the handle stays open with its buffer intact so the caller can retry
// Close (or Sync) once the service recovers — closing would discard the
// only surviving copy of the data. Any other failure invalidates the
// handle as usual.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.open {
		return nil
	}
	m := &f.fs.metrics
	span := m.tracer.Begin("vfs.close")
	start := time.Now()
	defer func() {
		m.closes.Inc()
		m.closeLat.Record(time.Since(start))
		span.End()
	}()
	err := f.syncLocked()
	if err != nil && IsUnavailable(err) {
		return err
	}
	f.open = false
	f.buf = nil
	return err
}
