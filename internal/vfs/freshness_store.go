package vfs

import (
	"errors"
	"fmt"
	"sync"

	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/merkle"
	"nexus/internal/obs"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// FreshnessTreeObjectName is the store object holding the untrusted
// freshness-tree snapshot.
const FreshnessTreeObjectName = "freshness-tree"

// ErrEpochUnavailable reports a proof request for an epoch this store
// cannot reconstruct (neither current, previous, nor on-store). The
// enclave maps it to a fail-closed proof rejection.
var ErrEpochUnavailable = errors.New("vfs: freshness tree epoch unavailable")

// FreshnessStore upgrades any enclave.ObjectStore to the
// FreshnessProofStore surface merkle freshness mode needs: it maintains
// the full uuid→version Merkle tree on the untrusted side and serves
// membership/absence proofs against it, while the enclave holds only
// the root commitment (DESIGN.md §15).
//
// The tree snapshot persists as a plain (unsealed) store object — it
// holds nothing secret, only version counters, and its integrity is
// irrelevant: every proof drawn from it is verified inside the enclave
// against the sealed root, so tampering here can only cause fail-closed
// rejections, never acceptance of stale data.
//
// Crash convergence: the snapshot carries an undo log of the last
// batch, so the tree can serve proofs for its own epoch *and* the one
// before it. The update protocol (tree persists first, the enclave's
// sealed root commits second) therefore tolerates a crash between the
// two writes — a re-mounted enclave still at the old epoch gets
// epoch-consistent proofs, and re-applying the interrupted batch is
// idempotent.
type FreshnessStore struct {
	inner enclave.ObjectStore

	mu     sync.Mutex
	cur    *merkle.Tree
	epoch  uint64
	undo   []merkle.LeafUpdate // prior leaf values of the last batch (0 = absent)
	loaded bool
}

var _ enclave.FreshnessProofStore = (*FreshnessStore)(nil)

// NewFreshnessStore wraps inner. When inner supports streaming puts the
// returned store forwards them (the enclave type-asserts for
// StreamObjectStore on large writes).
func NewFreshnessStore(inner enclave.ObjectStore) enclave.FreshnessProofStore {
	fs := &FreshnessStore{inner: inner}
	if ss, ok := inner.(enclave.StreamObjectStore); ok {
		return &streamFreshnessStore{FreshnessStore: fs, stream: ss}
	}
	return fs
}

// streamFreshnessStore adds the StreamObjectStore upgrade when the
// wrapped store has it.
type streamFreshnessStore struct {
	*FreshnessStore
	stream enclave.StreamObjectStore
}

func (s *streamFreshnessStore) PutVersionedStream(name string, total int, next func() ([]byte, error)) (uint64, error) {
	return s.stream.PutVersionedStream(name, total, next)
}

// GetVersioned, PutVersioned, Delete and Lock forward to the wrapped
// store untouched — the tree rides alongside the object space, it does
// not interpose on it.
func (s *FreshnessStore) GetVersioned(name string) ([]byte, uint64, error) {
	return s.inner.GetVersioned(name)
}

func (s *FreshnessStore) PutVersioned(name string, data []byte) (uint64, error) {
	return s.inner.PutVersioned(name, data)
}

func (s *FreshnessStore) Delete(name string) error { return s.inner.Delete(name) }

func (s *FreshnessStore) Lock(name string) (func(), error) { return s.inner.Lock(name) }

// Instrument forwards the registry to the wrapped store (the enclave
// calls it for any store exposing the method).
func (s *FreshnessStore) Instrument(reg *obs.Registry) {
	if in, ok := s.inner.(interface{ Instrument(*obs.Registry) }); ok {
		in.Instrument(reg)
	}
}

// snapshotFormat versions the persisted tree snapshot.
const snapshotFormat = 1

// maxUndoEntries bounds a decoded undo log (a batch is at most one
// write-back drain's worth of objects).
const maxUndoEntries = 1 << 20

func encodeSnapshot(tree *merkle.Tree, epoch uint64, undo []merkle.LeafUpdate) []byte {
	enc := tree.Encode()
	w := serial.NewWriter(1 + 8 + 4 + len(undo)*(uuid.Size+8) + 4 + len(enc))
	w.WriteUint8(snapshotFormat)
	w.WriteUint64(epoch)
	w.WriteUint32(uint32(len(undo)))
	for _, u := range undo {
		w.WriteRaw(u.ID[:])
		w.WriteUint64(u.Version)
	}
	w.WriteBytes(enc)
	return w.Bytes()
}

func decodeSnapshot(data []byte) (tree *merkle.Tree, epoch uint64, undo []merkle.LeafUpdate, err error) {
	r := serial.NewReader(data)
	if f := r.ReadUint8("freshness snapshot format"); r.Err() == nil && f != snapshotFormat {
		return nil, 0, nil, fmt.Errorf("vfs: unknown freshness snapshot format %d", f)
	}
	epoch = r.ReadUint64("freshness snapshot epoch")
	n := r.ReadCount(maxUndoEntries, "freshness undo entries")
	for i := 0; i < n; i++ {
		var u merkle.LeafUpdate
		r.ReadRawInto(u.ID[:], "freshness undo id")
		u.Version = r.ReadUint64("freshness undo version")
		undo = append(undo, u)
	}
	enc := r.ReadBytes(0, "freshness snapshot tree")
	if err := r.Finish(); err != nil {
		return nil, 0, nil, fmt.Errorf("decoding freshness snapshot: %w", err)
	}
	if tree, err = merkle.DecodeTree(enc); err != nil {
		return nil, 0, nil, err
	}
	return tree, epoch, undo, nil
}

// loadLocked establishes the tree state, from the store when force is
// set or nothing is resident yet. A missing snapshot is a fresh volume:
// empty tree, epoch 0.
func (s *FreshnessStore) loadLocked(force bool) error {
	if s.loaded && !force {
		return nil
	}
	data, _, err := s.inner.GetVersioned(FreshnessTreeObjectName)
	if err != nil {
		if errors.Is(err, backend.ErrNotExist) {
			if !s.loaded {
				s.cur, s.epoch, s.undo, s.loaded = merkle.New(), 0, nil, true
			}
			return nil
		}
		return err
	}
	tree, epoch, undo, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	// Never regress onto an older on-store snapshot over newer resident
	// state (the put of our own snapshot may have raced a reader).
	if s.loaded && epoch < s.epoch {
		return nil
	}
	s.cur, s.epoch, s.undo, s.loaded = tree, epoch, undo, true
	return nil
}

// prevTreeLocked rebuilds the previous epoch's tree by applying the
// undo log to a clone of the current one.
func (s *FreshnessStore) prevTreeLocked() *merkle.Tree {
	t := s.cur.Clone()
	for _, u := range s.undo {
		t.Set(u.ID, u.Version)
	}
	return t
}

// treeAt returns the tree matching epoch: the current one, the previous
// one (undo), or whatever a forced reload surfaces.
func (s *FreshnessStore) treeAtLocked(epoch uint64) (*merkle.Tree, error) {
	for attempt := 0; ; attempt++ {
		if err := s.loadLocked(attempt > 0); err != nil {
			return nil, err
		}
		switch {
		case epoch == s.epoch:
			return s.cur, nil
		case epoch+1 == s.epoch:
			return s.prevTreeLocked(), nil
		}
		if attempt > 0 {
			return nil, fmt.Errorf("%w: want epoch %d, tree at %d", ErrEpochUnavailable, epoch, s.epoch)
		}
	}
}

// FreshnessProof implements enclave.FreshnessProofStore.
func (s *FreshnessStore) FreshnessProof(id uuid.UUID, epoch uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.treeAtLocked(epoch)
	if err != nil {
		return nil, err
	}
	return t.Prove(id).Encode(), nil
}

// FreshnessUpdate implements enclave.FreshnessProofStore: it applies
// the batch to the tree at the given epoch and returns one proof per
// update, each against the tree state just before that update — the
// sequence the enclave folds into its next root. The snapshot persists
// before the new state is committed in memory, so a failed put leaves
// the store and the wrapper consistent at the old epoch.
func (s *FreshnessStore) FreshnessUpdate(epoch uint64, updates []merkle.LeafUpdate) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if err := s.loadLocked(attempt > 0); err != nil {
			return nil, err
		}
		if epoch == s.epoch {
			break
		}
		if epoch+1 == s.epoch {
			// The previous batch's sealed root never committed (crash or
			// fault between the two writes): rewind and re-apply.
			s.cur, s.epoch, s.undo = s.prevTreeLocked(), s.epoch-1, nil
			break
		}
		if attempt > 0 {
			return nil, fmt.Errorf("%w: update at epoch %d, tree at %d", ErrEpochUnavailable, epoch, s.epoch)
		}
	}

	next := s.cur.Clone()
	proofs := make([][]byte, 0, len(updates))
	var undo []merkle.LeafUpdate
	seen := make(map[uuid.UUID]bool, len(updates))
	for _, u := range updates {
		proofs = append(proofs, next.Prove(u.ID).Encode())
		if !seen[u.ID] {
			seen[u.ID] = true
			prior, _ := next.Lookup(u.ID) // 0 when absent — Set's delete spelling
			undo = append(undo, merkle.LeafUpdate{ID: u.ID, Version: prior})
		}
		next.Set(u.ID, u.Version)
	}

	if _, err := s.inner.PutVersioned(FreshnessTreeObjectName, encodeSnapshot(next, epoch+1, undo)); err != nil {
		return nil, err
	}
	s.cur, s.epoch, s.undo = next, epoch+1, undo
	return proofs, nil
}
