package nexus

import (
	"bytes"
	"errors"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/enclave"
)

func TestMutualSharePublicAPI(t *testing.T) {
	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	shared := backend.NewMemStore()
	newClient := func() *Client {
		c, err := NewClient(ClientConfig{Store: WrapStore(shared), IAS: ias})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	owenClient := newClient()
	owen, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, _, err := owenClient.CreateVolume(owen)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.FS().WriteFile("/f", []byte("pfs-protected")); err != nil {
		t.Fatal(err)
	}

	aliceClient := newClient()
	alice, err := NewIdentity("alice")
	if err != nil {
		t.Fatal(err)
	}

	offer, err := aliceClient.BeginMutualShare(alice)
	if err != nil {
		t.Fatalf("BeginMutualShare: %v", err)
	}
	grant, err := vol.GrantAccessMutual(offer, "alice", alice.PublicKey, owen)
	if err != nil {
		t.Fatalf("GrantAccessMutual: %v", err)
	}
	sealed, volID, err := aliceClient.AcceptMutualShareGrant(grant, owen.PublicKey)
	if err != nil {
		t.Fatalf("AcceptMutualShareGrant: %v", err)
	}
	if err := vol.SetACL("/", "alice", ReadOnly); err != nil {
		t.Fatal(err)
	}
	aliceVol, err := aliceClient.Mount(alice, sealed, volID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := aliceVol.FS().ReadFile("/f")
	if err != nil || !bytes.Equal(got, []byte("pfs-protected")) {
		t.Fatalf("alice read = %q, %v", got, err)
	}

	// Forward secrecy at the API level: the grant cannot be re-consumed.
	if _, _, err := aliceClient.AcceptMutualShareGrant(grant, owen.PublicKey); err == nil {
		t.Fatal("replayed mutual grant accepted")
	}
}

func TestVolumeUserAdministration(t *testing.T) {
	client, err := NewClient(ClientConfig{Store: NewMemoryStore()})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}

	alice, err := NewIdentity("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.AddUser("alice", alice.PublicKey); err != nil {
		t.Fatal(err)
	}
	users, err := vol.Users()
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 || users[0] != "owen" || users[1] != "alice" {
		t.Fatalf("Users = %v", users)
	}
	if err := vol.RemoveUser("alice"); err != nil {
		t.Fatal(err)
	}
	users, err = vol.Users()
	if err != nil || len(users) != 1 {
		t.Fatalf("Users after removal = %v, %v", users, err)
	}
}

func TestVolumeACLRoundTrip(t *testing.T) {
	client, err := NewClient(ClientConfig{Store: NewMemoryStore()})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewIdentity("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.AddUser("bob", bob.PublicKey); err != nil {
		t.Fatal(err)
	}
	if err := vol.FS().MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := vol.SetACL("/d", "bob", ReadWrite); err != nil {
		t.Fatal(err)
	}
	acl, err := vol.GetACL("/d")
	if err != nil || acl["bob"] != ReadWrite {
		t.Fatalf("GetACL = %v, %v", acl, err)
	}
	// Enclave accessor exposes statistics.
	if client.Enclave().Stats().MetadataFlushes == 0 {
		t.Fatal("no metadata flushes recorded")
	}
}

func TestDisabledMetadataCacheStillCorrect(t *testing.T) {
	client, err := NewClient(ClientConfig{
		Store:                NewMemoryStore(),
		DisableMetadataCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}
	fs := vol.FS()
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/f", []byte("uncached")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a/b/f")
	if err != nil || string(got) != "uncached" {
		t.Fatalf("read = %q, %v", got, err)
	}
	client.Enclave().DropCaches() // no-op without a cache; must not panic
	if st := client.Enclave().Stats(); st.MetadataCacheHits != 0 {
		t.Fatalf("cache hits with cache disabled: %d", st.MetadataCacheHits)
	}
}

func TestFreshnessTreePublicAPI(t *testing.T) {
	client, err := NewClient(ClientConfig{
		Store:         NewMemoryStore(),
		FreshnessTree: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}
	fs := vol.FS()
	if err := fs.WriteFile("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
}

func TestMountWrongVolumeID(t *testing.T) {
	client, err := NewClient(ClientConfig{Store: NewMemoryStore()})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	_, sealed, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong volume id: the sealed blob's AAD binding must reject it.
	var wrong VolumeID
	wrong[0] = 0xde
	if _, err := client.Mount(owner, sealed, wrong); !errors.Is(err, enclave.ErrBadAuth) {
		t.Fatalf("Mount with wrong volume id = %v, want ErrBadAuth", err)
	}
}

func TestIdentityWithoutPrivateKeyCannotSign(t *testing.T) {
	client, err := NewClient(ClientConfig{Store: NewMemoryStore()})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, sealed, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}
	pubOnly := Identity{Name: owner.Name, PublicKey: owner.PublicKey}
	if _, err := client.Mount(pubOnly, sealed, vol.ID()); err == nil {
		t.Fatal("mounted without a private key")
	}
}
