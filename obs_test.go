package nexus

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"nexus/internal/afs"
	"nexus/internal/backend"
	"nexus/internal/obs"
)

// obsStack is a full client over a real AFS server with one shared
// observability registry across every layer (vfs facade, enclave, SGX
// transitions, AFS client), mirroring a production deployment.
type obsStack struct {
	reg    *Obs
	client *Client
	vol    *Volume
	afs    *afs.Client
}

func startObsStack(t *testing.T) *obsStack {
	t.Helper()
	srv := afs.NewServer(backend.NewMemStore())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })

	reg := NewObs()
	afsClient, err := afs.Dial(l.Addr().String(), afs.ClientConfig{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = afsClient.Close() })

	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{
		Store: afsClient,
		IAS:   ias,
		Obs:   reg,
		// Small chunks so a small file spans an exact, assertable number
		// of crypto chunks: 4096 bytes / 1024 = 4.
		ChunkSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if client.Obs() != reg {
		t.Fatal("Client.Obs() did not return the configured registry")
	}
	owner, err := NewIdentity("owner")
	if err != nil {
		t.Fatal(err)
	}
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}
	return &obsStack{reg: reg, client: client, vol: vol, afs: afsClient}
}

// counterDelta reads a set of counters before fn and returns how much
// each moved across it.
func counterDelta(reg *Obs, names []string, fn func()) map[string]int64 {
	before := make(map[string]int64, len(names))
	for _, n := range names {
		before[n] = reg.CounterValue(n)
	}
	fn()
	delta := make(map[string]int64, len(names))
	for _, n := range names {
		delta[n] = reg.CounterValue(n) - before[n]
	}
	return delta
}

// findSpan walks a span forest depth-first for the first span whose name
// matches exactly.
func findSpan(spans []*Span, name string) *Span {
	for _, s := range spans {
		if s.Name == name {
			return s
		}
		if found := findSpan(s.Children, name); found != nil {
			return found
		}
	}
	return nil
}

func hasDescendantPrefix(s *Span, prefix string) bool {
	for _, c := range s.Children {
		if strings.HasPrefix(c.Name, prefix) || hasDescendantPrefix(c, prefix) {
			return true
		}
	}
	return false
}

func tagValue(s *Span, key string) (string, bool) {
	for _, tg := range s.Tags {
		if tg.Key == key {
			return tg.Value, true
		}
	}
	return "", false
}

// TestObservabilityEndToEnd drives write → read → revoke through a full
// client stack and asserts both the span-tree shape (vfs parents the
// enclave transition spans, which parent the AFS RPC spans) and the
// exact metric deltas each phase must produce.
func TestObservabilityEndToEnd(t *testing.T) {
	st := startObsStack(t)
	fs := st.vol.FS()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Touch("/docs/f.bin"); err != nil {
		t.Fatal(err)
	}

	tracer := st.reg.Tracer()
	tracer.Enable()
	defer tracer.Disable()

	data := bytes.Repeat([]byte{0xA5}, 4096) // exactly 4 chunks of 1024

	// --- Write ---
	tracer.Take() // discard setup spans
	wDelta := counterDelta(st.reg, []string{
		"vfs_write_total",
		"enclave_chunk_crypto_chunks_total",
	}, func() {
		if err := fs.WriteFile("/docs/f.bin", data); err != nil {
			t.Fatal(err)
		}
	})
	if wDelta["vfs_write_total"] != 1 {
		t.Errorf("write: vfs_write_total moved %d, want 1", wDelta["vfs_write_total"])
	}
	// 4096 bytes at ChunkSize 1024: exactly 4 chunks encrypted, none
	// decrypted.
	if wDelta["enclave_chunk_crypto_chunks_total"] != 4 {
		t.Errorf("write: chunk crypto chunks moved %d, want 4", wDelta["enclave_chunk_crypto_chunks_total"])
	}

	wSpans := tracer.Take()
	wRoot := findSpan(wSpans, "vfs.write")
	if wRoot == nil {
		t.Fatalf("no vfs.write root span; roots: %v", spanNames(wSpans))
	}
	ecall := findSpan(wRoot.Children, "sgx.ecall")
	if ecall == nil {
		t.Fatal("vfs.write has no sgx.ecall child")
	}
	if findSpan(wSpans, "enclave.chunkcrypto") == nil {
		t.Error("write produced no enclave.chunkcrypto span")
	} else if chunks, ok := tagValue(findSpan(wSpans, "enclave.chunkcrypto"), "chunks"); !ok || chunks != "4" {
		t.Errorf("chunkcrypto span chunks tag = %q, want \"4\"", chunks)
	}
	// The write must reach the server: some enclave transition span must
	// have an AFS RPC span beneath it (vfs → enclave → afs chain).
	foundRPC := false
	for _, root := range wSpans {
		if root.Name == "vfs.write" && hasDescendantPrefix(root, "afs.") {
			foundRPC = true
		}
	}
	if !foundRPC {
		t.Error("no afs.* span under the vfs.write root")
	}
	// Per-stage durations: parent spans must cover their children.
	if wRoot.Dur <= 0 || ecall.Dur <= 0 || wRoot.Dur < ecall.Dur {
		t.Errorf("span durations inconsistent: vfs.write=%v sgx.ecall=%v", wRoot.Dur, ecall.Dur)
	}

	// --- Read (cold: caches dropped so data must come off the server) ---
	st.client.Enclave().DropCaches()
	st.afs.FlushCache()
	tracer.Take()
	rDelta := counterDelta(st.reg, []string{
		"vfs_read_total",
		"enclave_chunk_crypto_chunks_total",
		"enclave_metadata_loads_total",
	}, func() {
		got, err := fs.ReadFile("/docs/f.bin")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("read returned different bytes")
		}
	})
	if rDelta["vfs_read_total"] != 1 {
		t.Errorf("read: vfs_read_total moved %d, want 1", rDelta["vfs_read_total"])
	}
	// The same 4 chunks come back through the decrypt path.
	if rDelta["enclave_chunk_crypto_chunks_total"] != 4 {
		t.Errorf("read: chunk crypto chunks moved %d, want 4", rDelta["enclave_chunk_crypto_chunks_total"])
	}
	// A fully cold read verifies every metadata object on the path: the
	// root dirnode and the entry bucket holding "docs", the /docs
	// dirnode and the bucket holding "f.bin", and the filenode — 5
	// loads. A change here means the metadata I/O pattern changed;
	// re-derive before updating.
	if rDelta["enclave_metadata_loads_total"] != 5 {
		t.Errorf("read: metadata loads moved %d, want 5", rDelta["enclave_metadata_loads_total"])
	}
	rSpans := tracer.Take()
	rRoot := findSpan(rSpans, "vfs.read")
	if rRoot == nil {
		t.Fatalf("no vfs.read root span; roots: %v", spanNames(rSpans))
	}
	if findSpan(rRoot.Children, "sgx.ecall") == nil {
		t.Error("vfs.read has no sgx.ecall child")
	}
	if !hasDescendantPrefix(rRoot, "afs.") {
		t.Error("cold read produced no afs.* span under vfs.read")
	}

	// --- Revoke (ACL update through the facade) ---
	bob, err := NewIdentity("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.vol.AddUser("bob", bob.PublicKey); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetACL("/docs", "bob", ReadOnly); err != nil {
		t.Fatal(err)
	}
	tracer.Take()
	vDelta := counterDelta(st.reg, []string{
		"vfs_setacl_total",
		"enclave_metadata_flushes_total",
	}, func() {
		if err := fs.SetACL("/docs", "bob", NoRights); err != nil {
			t.Fatal(err)
		}
	})
	if vDelta["vfs_setacl_total"] != 1 {
		t.Errorf("revoke: vfs_setacl_total moved %d, want 1", vDelta["vfs_setacl_total"])
	}
	// Revocation is a single-dirnode metadata update (the paper's core
	// claim): one metadata flush plus the Merkle freshness root that
	// accompanies every metadata write under the default freshness
	// mode — and no file re-encryption either way.
	if vDelta["enclave_metadata_flushes_total"] != 2 {
		t.Errorf("revoke: metadata flushes moved %d, want 2 (dirnode + merkle root)", vDelta["enclave_metadata_flushes_total"])
	}
	vSpans := tracer.Take()
	vRoot := findSpan(vSpans, "vfs.setacl")
	if vRoot == nil {
		t.Fatalf("no vfs.setacl root span; roots: %v", spanNames(vSpans))
	}
	if findSpan(vRoot.Children, "sgx.ecall") == nil {
		t.Error("vfs.setacl has no sgx.ecall child")
	}

	// The shared registry serves every layer: one exposition must carry
	// vfs, enclave, sgx, and afs metric families together.
	var sb strings.Builder
	obs.WritePrometheus(&sb, st.reg)
	for _, family := range []string{"vfs_write_total", "enclave_chunk_crypto_chunks_total", "sgx_ecalls_total", "afs_rpcs_total"} {
		if !strings.Contains(sb.String(), family) {
			t.Errorf("exposition missing %s", family)
		}
	}
}

func spanNames(spans []*Span) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}

// TestObservabilityLegacyStatsShims proves the pre-registry accessors
// still work against the shared registry, so code written against the
// old Stats structs keeps reading true numbers.
func TestObservabilityLegacyStatsShims(t *testing.T) {
	st := startObsStack(t)
	fs := st.vol.FS()
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	encl := st.client.Enclave()
	stats := encl.Stats()
	if stats.MetadataFlushes == 0 {
		t.Error("legacy enclave Stats().MetadataFlushes = 0 after a write")
	}
	if encl.SGX().EcallCount() == 0 {
		t.Error("legacy SGX EcallCount() = 0 after a write")
	}
	if n, _ := st.afs.Stats(); n == 0 {
		t.Error("legacy afs Stats() rpcs = 0 after a write")
	}
	// The shims and the registry must agree: they are one source.
	if got := st.reg.CounterValue("sgx_ecalls_total"); got != encl.SGX().EcallCount() {
		t.Errorf("sgx_ecalls_total %d != EcallCount() %d", got, encl.SGX().EcallCount())
	}
	encl.ResetStats()
	if encl.SGX().EcallCount() != 0 || st.reg.CounterValue("sgx_ecalls_total") != 0 {
		t.Error("ResetStats did not clear the registry-backed counters")
	}
}
