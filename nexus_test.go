package nexus

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"nexus/internal/afs"
	"nexus/internal/backend"
	"nexus/internal/enclave"
)

func TestPublicAPIQuickstart(t *testing.T) {
	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{Store: NewMemoryStore(), IAS: ias})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, sealedKey, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealedKey) == 0 {
		t.Fatal("no sealed key returned")
	}

	fs := vol.FS()
	if err := fs.MkdirAll("/docs/reports"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/reports/q1.txt", []byte("quarterly numbers")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/docs/reports/q1.txt")
	if err != nil || string(data) != "quarterly numbers" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}

	// Remount later with the sealed key.
	vol2, err := client.Mount(owner, sealedKey, vol.ID())
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	data, err = vol2.FS().ReadFile("/docs/reports/q1.txt")
	if err != nil || string(data) != "quarterly numbers" {
		t.Fatalf("post-remount read = %q, %v", data, err)
	}
}

func TestLocalStoreVolumePersists(t *testing.T) {
	dir := t.TempDir()
	store, err := NewLocalStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, sealed, err := client.CreateVolume(owner)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.FS().WriteFile("/f", []byte("persisted")); err != nil {
		t.Fatal(err)
	}

	// A new client (same platform is required for the sealed key, so a
	// fresh stack cannot unseal — this verifies persistence via the same
	// client instead).
	vol2, err := client.Mount(owner, sealed, vol.ID())
	if err != nil {
		t.Fatal(err)
	}
	got, err := vol2.FS().ReadFile("/f")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("reopened read = %q, %v", got, err)
	}
}

// TestEndToEndSharingOverAFS is the full-system integration test: two
// users on separate simulated machines share one volume through a live
// AFS-like server, exchange the rootkey via attestation, enforce ACLs,
// and revoke.
func TestEndToEndSharingOverAFS(t *testing.T) {
	// Shared infrastructure: one AFS server, one attestation service.
	srv := afs.NewServer(backend.NewMemStore())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	addr := l.Addr().String()

	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}

	newStack := func() (*Client, *afs.Client) {
		afsClient, err := afs.Dial(addr, afs.ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = afsClient.Close() })
		c, err := NewClient(ClientConfig{Store: afsClient, IAS: ias})
		if err != nil {
			t.Fatal(err)
		}
		return c, afsClient
	}

	// Owen's machine.
	owenClient, owenAFS := newStack()
	owen, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, _, err := owenClient.CreateVolume(owen)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.FS().MkdirAll("/shared"); err != nil {
		t.Fatal(err)
	}
	if err := vol.FS().WriteFile("/shared/plan.txt", []byte("the plan")); err != nil {
		t.Fatal(err)
	}

	// Alice's machine.
	aliceClient, _ := newStack()
	alice, err := NewIdentity("alice")
	if err != nil {
		t.Fatal(err)
	}

	// In-band exchange via the AFS store itself.
	offer, err := aliceClient.CreateShareOffer(alice)
	if err != nil {
		t.Fatal(err)
	}
	if err := owenAFS.Put("xchg-offer-alice", offer); err != nil {
		t.Fatal(err)
	}
	offerBytes, err := owenAFS.Get("xchg-offer-alice")
	if err != nil {
		t.Fatal(err)
	}
	grant, err := vol.GrantAccess(offerBytes, "alice", alice.PublicKey, owen)
	if err != nil {
		t.Fatalf("GrantAccess: %v", err)
	}
	if err := owenAFS.Put("xchg-grant-alice", grant); err != nil {
		t.Fatal(err)
	}

	grantBytes, err := owenAFS.Get("xchg-grant-alice")
	if err != nil {
		t.Fatal(err)
	}
	aliceSealed, volID, err := aliceClient.AcceptShareGrant(grantBytes, owen.PublicKey)
	if err != nil {
		t.Fatalf("AcceptShareGrant: %v", err)
	}
	if volID != vol.ID() {
		t.Fatalf("grant volume %s, want %s", volID, vol.ID())
	}

	// Alice mounts; without ACL grants she sees nothing.
	aliceVol, err := aliceClient.Mount(alice, aliceSealed, volID)
	if err != nil {
		t.Fatalf("alice mount: %v", err)
	}
	if _, err := aliceVol.FS().ReadFile("/shared/plan.txt"); !errors.Is(err, enclave.ErrAccessDenied) {
		t.Fatalf("unauthorized read = %v, want ErrAccessDenied", err)
	}

	// Owen grants read access.
	if err := vol.SetACL("/", "alice", Lookup); err != nil {
		t.Fatal(err)
	}
	if err := vol.SetACL("/shared", "alice", ReadOnly); err != nil {
		t.Fatal(err)
	}
	got, err := aliceVol.FS().ReadFile("/shared/plan.txt")
	if err != nil {
		t.Fatalf("alice read after grant: %v", err)
	}
	if !bytes.Equal(got, []byte("the plan")) {
		t.Fatalf("alice read = %q", got)
	}
	// Writes remain denied.
	if err := aliceVol.FS().WriteFile("/shared/plan.txt", []byte("hijack")); !errors.Is(err, enclave.ErrAccessDenied) {
		t.Fatalf("alice write = %v, want ErrAccessDenied", err)
	}

	// Revocation: one metadata update; alice loses access.
	if err := vol.SetACL("/shared", "alice", NoRights); err != nil {
		t.Fatal(err)
	}
	if _, err := aliceVol.FS().ReadFile("/shared/plan.txt"); !errors.Is(err, enclave.ErrAccessDenied) {
		t.Fatalf("post-revocation read = %v, want ErrAccessDenied", err)
	}

	// Full revocation from the volume.
	if err := vol.RemoveUser("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := aliceClient.Mount(alice, aliceSealed, volID); err == nil {
		t.Fatal("revoked user re-mounted successfully")
	}

	// The server never saw plaintext.
	names, err := owenAFS.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "xchg-offer-alice" || n == "xchg-grant-alice" {
			continue
		}
		blob, err := owenAFS.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(blob, []byte("the plan")) {
			t.Fatalf("object %s holds plaintext", n)
		}
		if bytes.Contains(blob, []byte("plan.txt")) || bytes.Contains(blob, []byte("shared")) {
			t.Fatalf("object %s leaks names", n)
		}
	}
}

func TestIdentityValidation(t *testing.T) {
	if _, err := NewIdentity(""); err == nil {
		t.Fatal("empty identity name accepted")
	}
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("client without store accepted")
	}
}

func TestParseRightsReexport(t *testing.T) {
	r, err := ParseRights("lr")
	if err != nil || r != ReadOnly {
		t.Fatalf("ParseRights(lr) = %v, %v", r, err)
	}
	if !AllRights.Has(Administer) {
		t.Fatal("AllRights missing Administer")
	}
}
