// Package nexus is a stackable cryptographic filesystem that provides
// confidentiality, integrity, and fine-grained access control for files
// kept on untrusted storage platforms, following the design of
// "NEXUS: Practical and Secure Access Control on Untrusted Storage
// Platforms using Client-side SGX" (Djoko, Lange, Lee — DSN 2019).
//
// A NEXUS volume is an ordinary collection of blobs on any storage
// service exposing a file API — this repository ships an in-memory
// store, a local-directory store, and an AFS-like networked file server.
// Every blob is either an encrypted data object or an encrypted,
// integrity-protected metadata object, named by a random UUID; the
// storage service learns nothing about names, contents, directory
// structure, or policies.
//
// All keys live inside a client-side (simulated) SGX enclave: the volume
// rootkey is generated in-enclave, persisted only SGX-sealed, and shared
// with other users' enclaves through a remote-attestation-bound ECDH
// exchange. Access control lists are enforced by the enclave at access
// time, which makes revocation a single metadata update rather than a
// bulk file re-encryption.
//
// # Quick start
//
//	ias, _ := nexus.NewAttestationService()
//	client, _ := nexus.NewClient(nexus.ClientConfig{
//		Store: nexus.NewMemoryStore(),
//		IAS:   ias,
//	})
//	owner, _ := nexus.NewIdentity("owen")
//	vol, sealedKey, _ := client.CreateVolume(owner)
//	fs := vol.FS()
//	_ = fs.MkdirAll("/docs")
//	_ = fs.WriteFile("/docs/hello.txt", []byte("hello"))
//	data, _ := fs.ReadFile("/docs/hello.txt")
//	_ = data
//	_ = sealedKey // persist locally; needed to re-mount later
package nexus

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"time"

	"nexus/internal/acl"
	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/obs"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
	"nexus/internal/vfs"
)

// Re-exported types: the public API is expressed in terms of these
// aliases so callers never import internal packages.
type (
	// FS is the filesystem facade over a mounted volume.
	FS = vfs.FS
	// File is an open-to-close file handle.
	File = vfs.File
	// DirEntry is a directory listing entry.
	DirEntry = vfs.DirEntry
	// Rights is a bitmask of directory access rights.
	Rights = acl.Rights
	// VolumeID identifies a volume.
	VolumeID = uuid.UUID
	// AttestationService simulates the Intel Attestation Service that
	// verifies enclave quotes during rootkey exchanges.
	AttestationService = sgx.AttestationService
	// ObjectStore is the versioned storage interface volumes stack on.
	ObjectStore = enclave.ObjectStore
	// Store is the plain storage interface (wrapped automatically).
	Store = backend.Store
	// Obs is the observability registry: counters, gauges, latency
	// histograms, and the tracer for one client stack. See
	// ClientConfig.Obs and Client.Obs.
	Obs = obs.Registry
	// Span is one node of a trace: an operation with a duration, tags,
	// and child spans from the layers beneath it.
	Span = obs.Span
	// HistSnapshot is a point-in-time latency histogram summary
	// (count, sum, min/max, p50/p95/p99).
	HistSnapshot = obs.HistSnapshot
)

// NewObs creates an observability registry to share across clients (or
// to read from before the client exists). Optional: each Client creates
// its own when ClientConfig.Obs is nil.
func NewObs() *Obs { return obs.NewRegistry() }

// Access rights, re-exported from the ACL model (AFS letter vocabulary).
const (
	Lookup     = acl.Lookup
	Read       = acl.Read
	Insert     = acl.Insert
	Delete     = acl.Delete
	Write      = acl.Write
	Administer = acl.Administer
	ReadOnly   = acl.ReadOnly
	ReadWrite  = acl.ReadWrite
	AllRights  = acl.All
	NoRights   = acl.None
)

// Open flags for FS.Open.
const (
	O_RDONLY = vfs.O_RDONLY
	O_RDWR   = vfs.O_RDWR
	O_CREATE = vfs.O_CREATE
	O_TRUNC  = vfs.O_TRUNC
	O_APPEND = vfs.O_APPEND
)

// ParseRights parses AFS letter notation ("lridwa") or the shorthands
// "read", "write", "all", "none".
func ParseRights(s string) (Rights, error) { return acl.ParseRights(s) }

// NewAttestationService creates a fresh simulated attestation service.
// All clients that will exchange volumes must share one.
func NewAttestationService() (*AttestationService, error) {
	return sgx.NewAttestationService()
}

// NewMemoryStore returns an in-memory object store (testing and
// benchmarks).
func NewMemoryStore() ObjectStore {
	return vfs.NewVersionedStore(backend.NewMemStore())
}

// NewLocalStore returns a store persisting objects as files under dir —
// the "store data locally" deployment of the paper's design goals.
func NewLocalStore(dir string) (ObjectStore, error) {
	s, err := backend.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	return vfs.NewVersionedStore(s), nil
}

// WrapStore adapts any plain Store to the versioned interface.
func WrapStore(s Store) ObjectStore { return vfs.NewVersionedStore(s) }

// Identity is a user of NEXUS volumes: a username bound to an Ed25519
// keypair. The private key never enters the enclave; it signs
// authentication challenges and exchange messages on the user's behalf.
type Identity struct {
	Name       string
	PublicKey  ed25519.PublicKey
	PrivateKey ed25519.PrivateKey
}

// NewIdentity generates a fresh identity.
func NewIdentity(name string) (Identity, error) {
	if name == "" {
		return Identity{}, fmt.Errorf("nexus: identity name must not be empty")
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return Identity{}, fmt.Errorf("nexus: generating identity key: %w", err)
	}
	return Identity{Name: name, PublicKey: pub, PrivateKey: priv}, nil
}

// signer adapts the identity's private key to the enclave's callback.
func (id Identity) signer() enclave.Signer {
	return func(msg []byte) ([]byte, error) {
		if len(id.PrivateKey) != ed25519.PrivateKeySize {
			return nil, fmt.Errorf("nexus: identity %q has no private key", id.Name)
		}
		return ed25519.Sign(id.PrivateKey, msg), nil
	}
}

// ClientConfig configures one user's NEXUS stack on one machine.
type ClientConfig struct {
	// Store is the backing storage service (required). Use
	// NewMemoryStore, NewLocalStore, afs.Client via WrapStore-free
	// native support, or any ObjectStore implementation.
	Store ObjectStore
	// IAS is the attestation service shared by exchanging parties.
	// Optional: without it volumes work locally but cannot be shared.
	IAS *AttestationService
	// BucketSize caps dirnode bucket entries (default 128).
	BucketSize uint32
	// ChunkSize is the file encryption chunk size (default 1 MiB). With
	// ContentDefined it is the average chunk size instead (the chunker
	// cuts between ChunkSize/4 and 4×ChunkSize).
	ChunkSize uint32
	// ContentDefined switches file contents from fixed-size chunks to
	// content-defined chunking over a deduplicated content-addressed
	// store (DESIGN.md §16): a rolling hash cuts chunk boundaries from
	// the bytes themselves, each chunk is sealed once under a
	// volume-scoped convergent key, and identical plaintext — within a
	// file, across files, or across versions — is stored exactly once.
	// Edits re-upload only the chunks they touch. Existing fixed-size
	// files stay readable and convert on their next write; once
	// converted, a file stays content-defined even if the knob is later
	// cleared.
	ContentDefined bool
	// CryptoWorkers bounds the parallel chunk-crypto fan-out on file
	// reads and writes: 0 uses GOMAXPROCS (serial below a small-file
	// cutoff), 1 forces the serial path.
	CryptoWorkers int
	// EPCSize overrides the simulated enclave page cache budget
	// (default ~96 MiB, the paper's hardware).
	EPCSize int64
	// TransitionCost simulates per-ecall/ocall crossing latency.
	TransitionCost time.Duration
	// PlatformSeed, when set, derives the simulated CPU's fused secrets
	// deterministically so sealed rootkeys survive process restarts
	// (persist it like a machine credential). Empty means an ephemeral
	// platform.
	PlatformSeed []byte
	// DisableMetadataCache turns off the in-enclave metadata cache
	// (ablation studies).
	DisableMetadataCache bool
	// FreshnessFlat opts out of the default Merkle-authenticated
	// namespace in favour of the legacy flat freshness table (§VI-C):
	// every metadata object's version recorded in one authenticated
	// table re-sealed on each write — O(n) state, kept as the
	// differential oracle and the `-exp freshness` baseline. Mutually
	// exclusive with FreshnessMerkle.
	FreshnessFlat bool
	// FreshnessTree is a deprecated alias for FreshnessFlat, retained
	// for configs written before the Merkle namespace became the
	// default.
	FreshnessTree bool
	// FreshnessMerkle requests the Merkle-authenticated namespace
	// (DESIGN.md §15): whole-volume rollback protection with O(1)
	// enclave-resident state and O(log n) proofs per metadata load. The
	// client wraps the store in vfs.NewFreshnessStore automatically
	// when it does not already serve proofs. This is the DEFAULT — the
	// field is retained so configs can state it explicitly, and setting
	// it alongside FreshnessFlat is an error.
	FreshnessMerkle bool
	// WritebackMode selects the metadata flush policy: "on" (and the
	// default, "") batches metadata flushes in an in-enclave dirty set
	// drained at barriers — File.Sync/Close, FS.Sync, FS.WriteFile,
	// ACL/user/sharing changes, and the high-water marks below; "off"
	// seals and uploads metadata eagerly on every mutation (the
	// pre-write-back semantics, kept for comparison and for one-shot
	// processes that exit right after a single operation).
	WritebackMode string
	// WritebackMaxOps caps deferred mutations before an inline drain
	// (default 64; write-back mode only).
	WritebackMaxOps int
	// WritebackMaxBytes caps estimated batched metadata bytes before an
	// inline drain (default 4 MiB; write-back mode only).
	WritebackMaxBytes int64
	// DisableGroupKeys turns off the membership key tree (flat-list
	// user management, the pre-tree behaviour kept for comparison in
	// the revocation sweep). With the default (false) the enclave
	// maintains a subgroup key tree over the volume's users: revoking a
	// user rotates O(log n) keys, and directory ACLs can grant rights
	// to whole leaf subgroups. See Volume.SetGroupACL and DESIGN.md §13.
	DisableGroupKeys bool
	// Obs, when set, is the observability registry the whole stack
	// (vfs, enclave, SGX transitions) records into — share one registry
	// across clients to aggregate, or leave nil for a private registry
	// reachable via Client.Obs.
	Obs *Obs
}

// enclaveImage is the code identity of this NEXUS enclave build. Both
// sides of a rootkey exchange must run the same measurement.
var enclaveImage = sgx.Image{
	Name:    "nexus-enclave",
	Version: 1,
	Code:    []byte("nexus enclave reference implementation v1"),
}

// Client is one user's NEXUS stack: a simulated SGX platform with a
// loaded NEXUS enclave over a backing store. A Client manages one
// mounted volume at a time (matching the prototype's one-daemon-per-
// volume deployment).
type Client struct {
	platform *sgx.Platform
	encl     *enclave.Enclave
	cfg      ClientConfig
}

// NewClient builds a stack from cfg.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("nexus: ClientConfig.Store is required")
	}
	// Merkle freshness is the default; the flat table is the explicit
	// opt-out (FreshnessTree is its pre-rename spelling).
	if cfg.FreshnessMerkle && (cfg.FreshnessFlat || cfg.FreshnessTree) {
		return nil, fmt.Errorf("nexus: FreshnessMerkle and FreshnessFlat are mutually exclusive")
	}
	flatFreshness := cfg.FreshnessFlat || cfg.FreshnessTree
	merkleFreshness := !flatFreshness
	var writeback enclave.WritebackMode
	switch cfg.WritebackMode {
	case "", "on":
		writeback = enclave.WritebackOn
	case "off":
		writeback = enclave.WritebackOff
	default:
		return nil, fmt.Errorf("nexus: unknown WritebackMode %q (want \"on\" or \"off\")", cfg.WritebackMode)
	}
	platformCfg := sgx.PlatformConfig{
		EPCSize:        cfg.EPCSize,
		TransitionCost: cfg.TransitionCost,
	}
	var platform *sgx.Platform
	var err error
	if len(cfg.PlatformSeed) > 0 {
		platform, err = sgx.NewPlatformFromSeed(cfg.PlatformSeed, platformCfg, cfg.IAS)
	} else {
		platform, err = sgx.NewPlatform(platformCfg, cfg.IAS)
	}
	if err != nil {
		return nil, fmt.Errorf("nexus: creating platform: %w", err)
	}
	container, err := platform.CreateEnclave(enclaveImage)
	if err != nil {
		return nil, fmt.Errorf("nexus: loading enclave: %w", err)
	}
	store := cfg.Store
	if merkleFreshness {
		if _, ok := store.(enclave.FreshnessProofStore); !ok {
			store = vfs.NewFreshnessStore(store)
		}
	}
	encl, err := enclave.New(enclave.Config{
		SGX:                  container,
		Store:                store,
		IAS:                  cfg.IAS,
		BucketSize:           cfg.BucketSize,
		ChunkSize:            cfg.ChunkSize,
		ContentDefined:       cfg.ContentDefined,
		CryptoWorkers:        cfg.CryptoWorkers,
		DisableMetadataCache: cfg.DisableMetadataCache,
		FreshnessTree:        flatFreshness,
		FreshnessMerkle:      merkleFreshness,
		Writeback:            writeback,
		WritebackMaxOps:      cfg.WritebackMaxOps,
		WritebackMaxBytes:    cfg.WritebackMaxBytes,
		DisableGroupKeys:     cfg.DisableGroupKeys,
		Obs:                  cfg.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("nexus: creating enclave: %w", err)
	}
	return &Client{platform: platform, encl: encl, cfg: cfg}, nil
}

// Enclave exposes the underlying enclave (statistics, advanced use).
func (c *Client) Enclave() *enclave.Enclave { return c.encl }

// Obs returns the client's observability registry: every layer of the
// stack (vfs facade, enclave, SGX transition simulation) records its
// counters, latency histograms, and trace spans here. Enable tracing
// with c.Obs().Tracer().Enable() and drain span trees with Take.
func (c *Client) Obs() *Obs { return c.encl.Obs() }

// CreateVolume initializes a new volume owned by owner on the client's
// store, authenticates the owner, and returns the mounted volume plus
// the SGX-sealed rootkey the owner must persist locally to re-mount.
func (c *Client) CreateVolume(owner Identity) (*Volume, []byte, error) {
	sealed, err := c.encl.CreateVolume(owner.Name, owner.PublicKey)
	if err != nil {
		return nil, nil, fmt.Errorf("nexus: creating volume: %w", err)
	}
	volID, err := c.encl.VolumeUUID()
	if err != nil {
		return nil, nil, err
	}
	vol, err := c.Mount(owner, sealed, volID)
	if err != nil {
		return nil, nil, err
	}
	return vol, sealed, nil
}

// Mount authenticates user against the volume and returns its
// filesystem. The challenge–response of §IV-B runs under the covers:
// the enclave issues a nonce, the user's key signs nonce ‖ encrypted
// supernode, and the enclave validates the signature against the
// supernode's user table.
func (c *Client) Mount(user Identity, sealedRootKey []byte, volumeID VolumeID) (*Volume, error) {
	nonce, superBlob, err := c.encl.BeginAuth(user.PublicKey, sealedRootKey, volumeID)
	if err != nil {
		return nil, fmt.Errorf("nexus: mounting: %w", err)
	}
	msg := make([]byte, 0, len(nonce)+len(superBlob))
	msg = append(msg, nonce...)
	msg = append(msg, superBlob...)
	sig, err := user.signer()(msg)
	if err != nil {
		return nil, err
	}
	if err := c.encl.CompleteAuth(sig); err != nil {
		return nil, fmt.Errorf("nexus: mounting: %w", err)
	}
	return &Volume{client: c, fs: vfs.New(c.encl), id: volumeID}, nil
}

// CreateShareOffer produces this client's exchange offer (m1 of Fig. 4):
// an attested binding of the local enclave's ECDH key, signed by user.
// Publish the returned bytes where the volume owner can read them (e.g.
// a file on the shared storage service).
func (c *Client) CreateShareOffer(user Identity) ([]byte, error) {
	return c.encl.CreateExchangeOffer(user.Name, user.signer())
}

// AcceptShareGrant consumes a grant (m2 of Fig. 4) addressed to this
// client's enclave, returning the sealed rootkey and volume ID to Mount
// with. ownerPublicKey authenticates the grant's origin.
func (c *Client) AcceptShareGrant(grant []byte, ownerPublicKey ed25519.PublicKey) ([]byte, VolumeID, error) {
	return c.encl.AcceptGrant(grant, ownerPublicKey)
}

// BeginMutualShare starts the synchronous, mutually attested exchange
// variant (§VI-B): both sides use fresh ephemeral keys, giving the
// exchange perfect forward secrecy at the cost of requiring the offer
// and grant to belong to one session. Pair with Volume.GrantAccessMutual
// and Client.AcceptMutualShareGrant.
func (c *Client) BeginMutualShare(user Identity) ([]byte, error) {
	return c.encl.BeginMutualExchange(user.Name, user.signer())
}

// AcceptMutualShareGrant completes a mutual exchange started by
// BeginMutualShare, consuming this enclave's ephemeral key.
func (c *Client) AcceptMutualShareGrant(grant []byte, ownerPublicKey ed25519.PublicKey) ([]byte, VolumeID, error) {
	return c.encl.AcceptMutualGrant(grant, ownerPublicKey)
}

// Volume is a mounted NEXUS volume.
type Volume struct {
	client *Client
	fs     *vfs.FS
	id     VolumeID
}

// FS returns the volume's filesystem facade.
func (v *Volume) FS() *FS { return v.fs }

// ID returns the volume identifier.
func (v *Volume) ID() VolumeID { return v.id }

// AddUser grants an identity access to the volume (owner only). Sharing
// a rootkey additionally requires the exchange protocol (GrantAccess)
// unless the user operates on this same machine.
func (v *Volume) AddUser(name string, key ed25519.PublicKey) error {
	_, err := v.client.encl.AddUser(name, key)
	return err
}

// RemoveUser revokes an identity's volume access (owner only): a single
// supernode re-encryption, never a file re-encryption.
func (v *Volume) RemoveUser(name string) error {
	return v.client.encl.RemoveUser(name)
}

// Users lists the volume's authorized identities (owner first).
func (v *Volume) Users() ([]string, error) {
	users, err := v.client.encl.ListUsers()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(users))
	for _, u := range users {
		names = append(names, u.Name)
	}
	return names, nil
}

// GrantAccess performs the owner side of the rootkey exchange: it
// verifies the recipient's offer (signature + enclave attestation), adds
// them to the volume, and returns the grant to publish for them.
func (v *Volume) GrantAccess(offer []byte, userName string, userKey ed25519.PublicKey, owner Identity) ([]byte, error) {
	return v.client.encl.GrantAccess(offer, userName, userKey, owner.signer())
}

// GrantAccessMutual is the owner side of the synchronous, mutually
// attested exchange (§VI-B): the recipient's offer must come from
// Client.BeginMutualShare. Unlike GrantAccess, the owner's enclave is
// attested back to the recipient and both ECDH keys are ephemeral.
func (v *Volume) GrantAccessMutual(offer []byte, userName string, userKey ed25519.PublicKey, owner Identity) ([]byte, error) {
	return v.client.encl.GrantAccessMutual(offer, userName, userKey, owner.signer())
}

// SetACL grants rights on a directory (NoRights revokes).
func (v *Volume) SetACL(dirPath, userName string, rights Rights) error {
	return v.client.encl.SetACL(dirPath, userName, rights)
}

// SetGroupACL grants rights on a directory to an entire leaf subgroup
// of the membership key tree (NoRights revokes the grant). Obtain a
// user's subgroup with UserGroup. Subgroup membership churn needs no
// ACL rewrite: rights resolve through the tree at check time.
func (v *Volume) SetGroupACL(dirPath string, group uint32, rights Rights) error {
	return v.client.encl.SetGroupACL(dirPath, group, rights)
}

// UserGroup returns the leaf subgroup of the membership key tree the
// named user currently belongs to, for use with SetGroupACL.
func (v *Volume) UserGroup(userName string) (uint32, error) {
	return v.client.encl.UserGroup(userName)
}

// GetACL returns a directory's ACL keyed by username; subgroup grants
// appear as "group:<id>".
func (v *Volume) GetACL(dirPath string) (map[string]Rights, error) {
	return v.client.encl.GetACL(dirPath)
}
