// Benchmarks regenerating each table and figure of the NEXUS evaluation
// (DSN'19 §VII). Each benchmark stands up the simulated testbed — an
// AFS-like server behind a simulated LAN, a NEXUS stack, and the plain
// baseline — runs the corresponding experiment at a reduced scale, and
// reports the NEXUS-over-baseline overhead factors as custom metrics.
//
// Paper-scale runs (full sizes, full counts) are produced by
// cmd/nexus-bench; these benchmarks keep sizes small enough for
// `go test -bench=.` to complete in minutes while preserving each
// experiment's shape.
package nexus_test

import (
	"fmt"
	"testing"
	"time"

	"nexus/internal/bench"
	"nexus/internal/netsim"
	"nexus/internal/workload"
)

// benchEnv builds a testbed on a fast simulated LAN.
func benchEnv(b *testing.B, scale int64) *bench.Env {
	b.Helper()
	env, err := bench.NewEnv(bench.Config{
		Profile: netsim.Profile{RTT: 200 * time.Microsecond, Bandwidth: 125 << 20},
		Runs:    1,
		Scale:   scale,
	})
	if err != nil {
		b.Fatalf("NewEnv: %v", err)
	}
	b.Cleanup(env.Close)
	return env
}

// BenchmarkTable5aFileIO regenerates Table 5a (file I/O latency).
func BenchmarkTable5aFileIO(b *testing.B) {
	env := benchEnv(b, 16) // 16x smaller files: 64KB .. 4MB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.FileIO(env, []int{1, 2, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Nexus)/float64(r.OpenAFS),
					fmt.Sprintf("x-overhead-%dMB", r.SizeMB))
			}
		}
	}
}

// BenchmarkTable5bDirOps regenerates Table 5b (directory operations).
func BenchmarkTable5bDirOps(b *testing.B) {
	env := benchEnv(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.DirOps(env, []int{128, 256})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Nexus)/float64(r.OpenAFS),
					fmt.Sprintf("x-overhead-%dfiles", r.NumFiles))
			}
		}
	}
}

// BenchmarkFig5cGitClone regenerates Fig. 5c (repository clones) over a
// scaled-down redis-shaped tree.
func BenchmarkFig5cGitClone(b *testing.B) {
	env := benchEnv(b, 64)
	spec := workload.Redis
	spec.NumFiles /= 4
	spec.NumDirs /= 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.GitClone(env, []workload.TreeSpec{spec})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].Overhead, "x-overhead-redis")
		}
	}
}

// BenchmarkTableIIDatabase regenerates Table II (LevelDB- and
// SQLite-style database workloads).
func BenchmarkTableIIDatabase(b *testing.B) {
	env := benchEnv(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Database(env, 400)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Overhead, "x-"+r.Engine+"-"+r.Operation)
			}
		}
	}
}

// BenchmarkFig6LinuxApps regenerates Fig. 6 (tar/du/grep/cp/mv) over a
// scaled-down SFLD workload.
func BenchmarkFig6LinuxApps(b *testing.B) {
	env := benchEnv(b, 1)
	spec := workload.FlatSpec{Name: "sfld-small", NumFiles: 64, FileSize: 10 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.LinuxApps(env, []workload.FlatSpec{spec})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Overhead, "x-"+r.App)
			}
		}
	}
}

// BenchmarkRevocation regenerates the §VII-E revocation estimates.
func BenchmarkRevocation(b *testing.B) {
	spec := workload.FlatSpec{Name: "sfld", NumFiles: 128, FileSize: 10 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh env per iteration: revocation mutates ACL state.
		b.StopTimer()
		env, err := bench.NewEnv(bench.Config{Loopback: true, Runs: 1, Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rows, err := bench.Revocation(env, []workload.FlatSpec{spec})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			r := rows[0]
			b.ReportMetric(float64(r.NexusBytes), "nexus-bytes")
			b.ReportMetric(float64(r.CryptoBytes), "cryptofs-bytes")
			b.ReportMetric(float64(r.CryptoBytes)/float64(r.NexusBytes), "x-savings")
		}
		b.StopTimer()
		env.Close()
		b.StartTimer()
	}
}

// BenchmarkSharing regenerates the §VII-F sharing cost notes.
func BenchmarkSharing(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env, err := bench.NewEnv(bench.Config{Loopback: true, Runs: 1, Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := bench.Sharing(env); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		env.Close()
		b.StartTimer()
	}
}
