GO ?= go
FUZZTIME ?= 30s
CHAOS_SEEDS ?= 1 7 42

.PHONY: all build test race vet lint lint-baseline fuzz-smoke chaos obs bench bench-baseline cover revoke-sweep freshness-sweep dedup-sweep merkle vuln ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the repo-specific static analyzer (cmd/nexus-lint). It
# applies lint/baseline.json (accepted legacy findings), writes a SARIF
# log for CI upload, and exits non-zero on any new finding; see
# DESIGN.md §8 for the rule set and the //lint:ignore suppression
# syntax.
lint:
	$(GO) run ./cmd/nexus-lint -sarif nexus-lint.sarif ./...

# lint-baseline regenerates the accepted-findings baseline from the
# current tree. Run it only after triaging every surviving finding:
# anything recorded here stops failing CI.
lint-baseline:
	$(GO) run ./cmd/nexus-lint -write-baseline ./...

# fuzz-smoke gives each fuzz target a short budget. The checked-in seed
# corpora under */testdata/fuzz/ always run as part of `make test`; this
# goal additionally mutates for $(FUZZTIME) per target.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzGCMSIVRoundTrip -fuzztime=$(FUZZTIME) ./internal/gcmsiv/
	$(GO) test -run=^$$ -fuzz=FuzzWireDecode -fuzztime=$(FUZZTIME) ./internal/afs/
	$(GO) test -run=^$$ -fuzz=FuzzRetrySchedule -fuzztime=$(FUZZTIME) ./internal/afs/
	$(GO) test -run=^$$ -fuzz=FuzzGroupTreeDecode -fuzztime=$(FUZZTIME) ./internal/groupkey/
	$(GO) test -run=^$$ -fuzz=FuzzMerkleProofDecode -fuzztime=$(FUZZTIME) ./internal/merkle/
	$(GO) test -run=^$$ -fuzz=FuzzMerkleTreeDecode -fuzztime=$(FUZZTIME) ./internal/merkle/
	$(GO) test -run=^$$ -fuzz=FuzzChunkerBoundaries -fuzztime=$(FUZZTIME) ./internal/chunker/
	$(GO) test -run=^$$ -fuzz=FuzzCASDecode -fuzztime=$(FUZZTIME) ./internal/cas/

# chaos runs the seeded fault-injection suites under the race detector,
# once per seed in CHAOS_SEEDS: the AFS transport suite
# (internal/afs/chaos_test.go plus the disconnect property tests) and
# the enclave write-back crash-consistency suite
# (internal/enclave/writeback_test.go, write-back enabled). Each seed is
# an exact replay: the fault schedule is a pure function of the seed.
# See DESIGN.md §9 and §12.5.
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos seed $$seed =="; \
		NEXUS_CHAOS_SEED=$$seed $(GO) test -race -run 'TestChaos|TestProperty' -count=1 ./internal/afs/ ./internal/enclave/ || exit 1; \
	done

# obs mirrors the CI observability job: the registry/tracer suite and
# the cross-layer span/metric assertions under the race detector. The
# allocation-free assertions live in `make test` (alloc_test.go is
# build-tagged !race). See DESIGN.md §11.
obs:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 -run 'TestObservability' .
	$(GO) test -race -count=1 -run 'TestTransportFault|TestClientRPCLatency' ./internal/afs/

# bench mirrors the CI perf gate: rerun the fast file-I/O and
# chunk-crypto experiments under GOMAXPROCS=4 (so the report's cpus
# stamp matches the committed multi-core baseline), write
# BENCH_<rev>.json, and diff it against the baseline with the gated
# metrics (ns/op, allocs/op, MB/s) plus the w4-speedup check. On a
# machine with fewer than 4 physical cores the four workers time-slice
# and no real scaling is possible — disable that one check with
# `make bench MIN_SPEEDUP=0`.
MIN_SPEEDUP ?= 1.5
bench:
	$(GO) build -o bin/ ./cmd/nexus-bench ./cmd/nexus-benchdiff
	GOMAXPROCS=4 ./bin/nexus-bench -exp fileio,crypto -scale 1024 -crypto-bytes 16777216 -json
	./bin/nexus-benchdiff -baseline bench/baseline.json -current BENCH_$$(git rev-parse --short HEAD).json \
		-min-speedup-w4 $(MIN_SPEEDUP)

# bench-baseline refreshes the committed baseline after an intentional
# performance change (see README.md before running this). Run it on a
# machine with >= 4 physical cores: the baseline's MB/s columns gate CI.
bench-baseline:
	GOMAXPROCS=4 $(GO) run ./cmd/nexus-bench -exp fileio,crypto -scale 1024 -crypto-bytes 16777216 \
		-json -out bench/baseline.json

# vuln scans the module against the Go vulnerability database with the
# same pinned govulncheck the CI job runs. Needs network access to
# fetch the tool and the vuln DB.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./...

# cover reports coverage on the packages gated by the CI floor.
cover:
	$(GO) test -coverprofile=cover.out ./internal/metadata/ ./internal/gcmsiv/ ./internal/obs/ ./internal/groupkey/ ./internal/chunker/ ./internal/cas/
	$(GO) tool cover -func=cover.out | tail -1

# merkle runs the Merkle-authenticated namespace's full verification
# surface: the tree/proof unit and property tests, the seeded
# merkle-vs-flat-table oracle, and the adversarial rollback/fork suite
# (internal/enclave/rollback_test.go), all under the race detector.
# Reproduce a property failure with NEXUS_MERKLE_SEED=<seed>. See
# DESIGN.md §15.
merkle:
	$(GO) test -race -count=1 ./internal/merkle/
	$(GO) test -race -count=1 -run 'TestFreshnessStore' ./internal/vfs/
	$(GO) test -race -count=1 -run 'TestMerkle|TestRollback|TestFork|TestProofTampering|TestRootObject|TestPropertyMerkle' ./internal/enclave/

# freshness-sweep reproduces the DESIGN.md §15 freshness-at-scale sweep
# (10^3–10^6 objects) comparing per-load Merkle proof verification
# (O(log n) evidence, 40-byte enclave state) against the flat version
# table (O(n) both), and writes the rows into the JSON report for
# nexus-benchdiff (informational proof_bytes/op column).
freshness-sweep:
	$(GO) run ./cmd/nexus-bench -exp freshness -json \
		-objects 1000,10000,100000,1000000 -freshmode both

# revoke-sweep reproduces the §VII-E membership sweep (10^3–10^6 users)
# comparing the subgroup key tree's O(log n) revocation against the
# flat rotate-and-rewrap baseline, and writes the rows into the JSON
# report for nexus-benchdiff (informational wraps/op column).
revoke-sweep:
	$(GO) run ./cmd/nexus-bench -exp revoke-sweep -json \
		-members 1000,10000,100000,1000000 -groupmode both

# dedup-sweep reproduces the DESIGN.md §16 dedup experiment at paper-ish
# scale: the repeated-edit and git-clone workloads under fixed-size and
# content-defined chunking, reporting dedup ratio and uploaded bytes/op
# into the JSON report for nexus-benchdiff (informational columns).
dedup-sweep:
	$(GO) run ./cmd/nexus-bench -exp dedup -scale 1024 -json

ci: build vet lint race chaos obs

clean:
	$(GO) clean ./...
