GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race vet lint fuzz-smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the repo-specific static analyzer (cmd/nexus-lint). It exits
# non-zero on any finding; see DESIGN.md for the rule set and the
# //lint:ignore suppression syntax.
lint:
	$(GO) run ./cmd/nexus-lint ./...

# fuzz-smoke gives each fuzz target a short budget. The checked-in seed
# corpora under */testdata/fuzz/ always run as part of `make test`; this
# goal additionally mutates for $(FUZZTIME) per target.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzGCMSIVRoundTrip -fuzztime=$(FUZZTIME) ./internal/gcmsiv/
	$(GO) test -run=^$$ -fuzz=FuzzWireDecode -fuzztime=$(FUZZTIME) ./internal/afs/

ci: build vet lint race

clean:
	$(GO) clean ./...
