// ACL policies: fine-grained, per-directory access control enforced by
// the enclave (§IV-C).
//
// A small team shares one volume: the owner keeps /finance private,
// gives the engineer read-write on /src, and gives the auditor read-only
// everywhere. Every check happens inside the enclave before any
// plaintext is released — the storage service plays no part.
package main

import (
	"errors"
	"fmt"
	"log"

	"nexus"
)

func main() {
	client, err := nexus.NewClient(nexus.ClientConfig{Store: nexus.NewMemoryStore()})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := nexus.NewIdentity("owner")
	if err != nil {
		log.Fatal(err)
	}
	vol, sealedKey, err := client.CreateVolume(owner)
	if err != nil {
		log.Fatal(err)
	}

	// Build the tree and policies as the owner.
	fs := vol.FS()
	for _, d := range []string{"/src", "/finance"} {
		if err := fs.MkdirAll(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := fs.WriteFile("/src/main.go", []byte("package main")); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/finance/salaries.csv", []byte("alice,100000")); err != nil {
		log.Fatal(err)
	}

	engineer, err := nexus.NewIdentity("engineer")
	if err != nil {
		log.Fatal(err)
	}
	auditor, err := nexus.NewIdentity("auditor")
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []nexus.Identity{engineer, auditor} {
		if err := vol.AddUser(u.Name, u.PublicKey); err != nil {
			log.Fatal(err)
		}
	}

	// Policies, in AFS letter notation: l=lookup r=read i=insert
	// d=delete w=write a=administer.
	grants := []struct{ dir, user, rights string }{
		{"/", "engineer", "l"},
		{"/src", "engineer", "lridw"},
		{"/", "auditor", "lr"},
		{"/src", "auditor", "lr"},
		{"/finance", "auditor", "lr"},
	}
	for _, g := range grants {
		rights, err := nexus.ParseRights(g.rights)
		if err != nil {
			log.Fatal(err)
		}
		if err := vol.SetACL(g.dir, g.user, rights); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("granted %-8s %-6s on %s\n", g.user, g.rights, g.dir)
	}

	// Exercise the policies: the same enclave serves all three users on
	// this machine; each authenticates with their own key.
	check := func(id nexus.Identity, action string, fn func(fs *nexus.FS) error) {
		v, err := client.Mount(id, sealedKey, vol.ID())
		if err != nil {
			log.Fatalf("mount as %s: %v", id.Name, err)
		}
		err = fn(v.FS())
		verdict := "ALLOWED"
		if err != nil {
			verdict = "denied"
			if !errors.Is(err, errAccessDenied(err)) {
				verdict = "denied (" + err.Error() + ")"
			}
		}
		fmt.Printf("  %-9s %-34s %s\n", id.Name, action, verdict)
	}

	fmt.Println("\npolicy enforcement:")
	check(engineer, "write /src/main.go", func(fs *nexus.FS) error {
		return fs.WriteFile("/src/main.go", []byte("package main // v2"))
	})
	check(engineer, "read /finance/salaries.csv", func(fs *nexus.FS) error {
		_, err := fs.ReadFile("/finance/salaries.csv")
		return err
	})
	check(auditor, "read /finance/salaries.csv", func(fs *nexus.FS) error {
		_, err := fs.ReadFile("/finance/salaries.csv")
		return err
	})
	check(auditor, "write /src/main.go", func(fs *nexus.FS) error {
		return fs.WriteFile("/src/main.go", []byte("tampered"))
	})
	check(engineer, "create /src/util.go", func(fs *nexus.FS) error {
		return fs.WriteFile("/src/util.go", []byte("package main"))
	})

	// Revoke the engineer from /src: one metadata update.
	v, err := client.Mount(owner, sealedKey, vol.ID())
	if err != nil {
		log.Fatal(err)
	}
	if err := v.SetACL("/src", "engineer", nexus.NoRights); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrevoked engineer from /src:")
	check(engineer, "write /src/main.go", func(fs *nexus.FS) error {
		return fs.WriteFile("/src/main.go", []byte("post-revocation"))
	})

	// The enclave's current user is whoever authenticated last;
	// re-mount as the owner before inspecting the ACL.
	v, err = client.Mount(owner, sealedKey, vol.ID())
	if err != nil {
		log.Fatal(err)
	}
	acl, err := v.GetACL("/src")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal /src ACL:")
	for user, rights := range acl {
		fmt.Printf("  %-9s %s\n", user, rights)
	}
}

// errAccessDenied lets the example print cleanly without importing
// internal packages: any error is treated as a denial here.
func errAccessDenied(err error) error { return err }
