// Quickstart: create a NEXUS volume, write and read protected files, and
// look at what the (untrusted) storage service actually sees.
package main

import (
	"fmt"
	"log"

	"nexus"
	"nexus/internal/backend"
	"nexus/internal/vfs"
)

func main() {
	// The attestation service stands in for Intel's IAS; every client
	// that will exchange volumes shares one.
	ias, err := nexus.NewAttestationService()
	if err != nil {
		log.Fatal(err)
	}

	// The backing store is whatever file-API service you have. Here: an
	// in-memory store we can inspect afterwards. (Use nexus.NewLocalStore
	// for a directory, or an afs.Client for the networked server.)
	raw := backend.NewMemStore()
	client, err := nexus.NewClient(nexus.ClientConfig{
		Store: vfs.NewVersionedStore(raw),
		IAS:   ias,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Identities are Ed25519 keypairs; the private key never enters the
	// enclave.
	owner, err := nexus.NewIdentity("owen")
	if err != nil {
		log.Fatal(err)
	}

	// CreateVolume generates the rootkey inside the enclave and returns
	// it SGX-sealed: persist sealedKey like a machine credential.
	vol, sealedKey, err := client.CreateVolume(owner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created volume %s (sealed rootkey: %d bytes)\n", vol.ID(), len(sealedKey))

	// The volume behaves like a normal filesystem.
	fs := vol.FS()
	if err := fs.MkdirAll("/docs/reports"); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/docs/reports/q1.txt", []byte("quarterly numbers: 42")); err != nil {
		log.Fatal(err)
	}
	if err := fs.Symlink("reports/q1.txt", "/docs/latest"); err != nil {
		log.Fatal(err)
	}

	data, err := fs.ReadFile("/docs/reports/q1.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", data)

	entries, err := fs.ReadDir("/docs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("listing /docs:")
	for _, e := range entries {
		kind := "file"
		if e.IsDir {
			kind = "dir"
		} else if e.IsSymlink {
			kind = "symlink -> " + e.SymlinkTarget
		}
		fmt.Printf("  %-10s %s\n", e.Name, kind)
	}

	// What does the storage service see? Encrypted blobs under random
	// names — no filenames, no directory structure, no plaintext.
	names, err := raw.List("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe storage provider sees %d objects:\n", len(names))
	for i, name := range names {
		if i == 4 {
			fmt.Printf("  ... and %d more\n", len(names)-4)
			break
		}
		blob, err := raw.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  (%d bytes of ciphertext)\n", name, len(blob))
	}

	// Remounting later requires the sealed key and the user's identity.
	vol2, err := client.Mount(owner, sealedKey, vol.ID())
	if err != nil {
		log.Fatal(err)
	}
	again, err := vol2.FS().ReadFile("/docs/reports/q1.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter remount: %q\n", again)
}
