// Revocation: the paper's headline economic argument (§VII-E).
//
// A pure cryptographic filesystem must assume a revoked user cached every
// file key they could read, so revocation means re-encrypting and
// re-uploading every affected file. NEXUS keeps keys inside the enclave,
// so revocation is one small metadata update — regardless of how much
// data the directory holds.
//
// This example revokes a user from a directory holding 10 MB across 64
// files under both systems and prints the bytes each one had to touch.
package main

import (
	"fmt"
	"log"

	"nexus"
	"nexus/internal/backend"
	"nexus/internal/cryptofs"
)

const (
	numFiles = 64
	fileSize = 160 << 10 // ~10 MB total
)

func main() {
	fmt.Printf("population: %d files, %d KB each (%.1f MB total)\n\n",
		numFiles, fileSize>>10, float64(numFiles*fileSize)/(1<<20))

	nexusBytes := runNexus()
	cryptoBytes := runCryptoFS()

	fmt.Printf("\nrevocation payload:\n")
	fmt.Printf("  NEXUS:           %10d bytes (one dirnode re-encrypted)\n", nexusBytes)
	fmt.Printf("  pure crypto FS:  %10d bytes (every file re-encrypted + re-keyed)\n", cryptoBytes)
	fmt.Printf("  ratio:           %10.0fx\n", float64(cryptoBytes)/float64(nexusBytes))
}

func runNexus() int64 {
	client, err := nexus.NewClient(nexus.ClientConfig{Store: nexus.NewMemoryStore()})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := nexus.NewIdentity("owen")
	if err != nil {
		log.Fatal(err)
	}
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := nexus.NewIdentity("alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := vol.AddUser("alice", alice.PublicKey); err != nil {
		log.Fatal(err)
	}

	fs := vol.FS()
	if err := fs.MkdirAll("/project"); err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, fileSize)
	for i := 0; i < numFiles; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/project/f%03d", i), payload); err != nil {
			log.Fatal(err)
		}
	}
	if err := vol.SetACL("/project", "alice", nexus.ReadWrite); err != nil {
		log.Fatal(err)
	}

	// Revoke: one ACL update, one metadata object re-encrypted.
	encl := client.Enclave()
	encl.ResetStats()
	if err := vol.SetACL("/project", "alice", nexus.NoRights); err != nil {
		log.Fatal(err)
	}
	st := encl.Stats()
	fmt.Printf("NEXUS revocation: %d metadata object(s), %d bytes uploaded, 0 file bytes touched\n",
		st.MetadataFlushes, st.MetadataBytesWritten)
	return st.MetadataBytesWritten
}

func runCryptoFS() int64 {
	owner, err := cryptofs.NewUser("owen")
	if err != nil {
		log.Fatal(err)
	}
	alice, err := cryptofs.NewUser("alice")
	if err != nil {
		log.Fatal(err)
	}
	cfs := cryptofs.New(backend.NewMemStore(), owner)
	cfs.AddUser(alice)

	payload := make([]byte, fileSize)
	paths := make([]string, 0, numFiles)
	for i := 0; i < numFiles; i++ {
		p := fmt.Sprintf("/project/f%03d", i)
		paths = append(paths, p)
		if err := cfs.WriteFile(p, payload, []string{"alice"}); err != nil {
			log.Fatal(err)
		}
	}

	stats, err := cfs.Revoke("alice", paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crypto-fs revocation: %d files re-encrypted, %d bytes re-encrypted, %d bytes uploaded, %d key wraps\n",
		stats.FilesTouched, stats.BytesReencrypted, stats.BytesUploaded, stats.KeyWraps)
	return stats.BytesUploaded
}
