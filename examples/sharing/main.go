// Sharing: the full Fig. 4 rootkey exchange between two machines.
//
// Owen owns a volume on a shared AFS-like server. Alice, on a different
// (simulated) SGX machine, wants access. The exchange is entirely
// in-band — both protocol messages are ordinary files on the shared
// store — and the rootkey is only ever released to an enclave that
// remote attestation proves is a genuine NEXUS enclave.
package main

import (
	"fmt"
	"log"
	"net"

	"nexus"
	"nexus/internal/afs"
	"nexus/internal/backend"
)

func main() {
	// Shared infrastructure: one storage server, one attestation service.
	server := afs.NewServer(backend.NewMemStore())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = server.Serve(l) }()
	defer server.Close()
	addr := l.Addr().String()

	ias, err := nexus.NewAttestationService()
	if err != nil {
		log.Fatal(err)
	}

	newMachine := func() (*nexus.Client, *afs.Client) {
		store, err := afs.Dial(addr, afs.ClientConfig{})
		if err != nil {
			log.Fatal(err)
		}
		client, err := nexus.NewClient(nexus.ClientConfig{Store: store, IAS: ias})
		if err != nil {
			log.Fatal(err)
		}
		return client, store
	}

	// --- Owen's machine: create and populate the volume. ---
	owenClient, owenStore := newMachine()
	owen, err := nexus.NewIdentity("owen")
	if err != nil {
		log.Fatal(err)
	}
	vol, _, err := owenClient.CreateVolume(owen)
	if err != nil {
		log.Fatal(err)
	}
	fs := vol.FS()
	if err := fs.MkdirAll("/shared"); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/shared/plan.txt", []byte("the plan: ship it")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owen created volume %s\n", vol.ID())

	// --- Alice's machine. ---
	aliceClient, aliceStore := newMachine()
	alice, err := nexus.NewIdentity("alice")
	if err != nil {
		log.Fatal(err)
	}

	// Setup (m1): Alice's enclave quotes its ECDH key; she signs and
	// publishes the offer as a file on the shared store.
	offer, err := aliceClient.CreateShareOffer(alice)
	if err != nil {
		log.Fatal(err)
	}
	if err := aliceStore.Put("xchg-offer-alice", offer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice published her offer (%d bytes, in-band)\n", len(offer))

	// Exchange (m2): Owen fetches the offer, verifies Alice's signature
	// and her enclave's attestation, admits her to the volume, and
	// publishes the grant — the rootkey encrypted to her enclave.
	offerBytes, err := owenStore.Get("xchg-offer-alice")
	if err != nil {
		log.Fatal(err)
	}
	grant, err := vol.GrantAccess(offerBytes, "alice", alice.PublicKey, owen)
	if err != nil {
		log.Fatal(err)
	}
	if err := owenStore.Put("xchg-grant-alice", grant); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owen verified alice's enclave and published the grant (%d bytes)\n", len(grant))

	// Owen also grants directory permissions (the rootkey alone does not
	// authorize file access — ACLs are enforced in the enclave).
	if err := vol.SetACL("/", "alice", nexus.Lookup); err != nil {
		log.Fatal(err)
	}
	if err := vol.SetACL("/shared", "alice", nexus.ReadOnly); err != nil {
		log.Fatal(err)
	}

	// Extraction: Alice recovers the rootkey inside her enclave, sealed
	// to her machine, and mounts.
	grantBytes, err := aliceStore.Get("xchg-grant-alice")
	if err != nil {
		log.Fatal(err)
	}
	sealedForAlice, volID, err := aliceClient.AcceptShareGrant(grantBytes, owen.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	aliceVol, err := aliceClient.Mount(alice, sealedForAlice, volID)
	if err != nil {
		log.Fatal(err)
	}
	data, err := aliceVol.FS().ReadFile("/shared/plan.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice mounted %s and read: %q\n", volID, data)

	// Write access was not granted: the enclave denies it.
	if err := aliceVol.FS().WriteFile("/shared/plan.txt", []byte("hijacked")); err != nil {
		fmt.Printf("alice's write denied as expected: %v\n", err)
	}
}
