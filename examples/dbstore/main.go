// dbstore: running an embedded database on top of a NEXUS volume.
//
// The Table II evaluation runs LevelDB- and SQLite-style engines over
// NEXUS; this example does the same with the repository's LSM key-value
// store, entirely through the public filesystem API. The database's WAL
// appends, table flushes, and compactions all become encrypted object
// writes — the storage provider sees none of the keys or values.
package main

import (
	"fmt"
	"log"

	"nexus"
	"nexus/internal/backend"
	"nexus/internal/fsapi"
	"nexus/internal/kvstore"
	"nexus/internal/vfs"
)

func main() {
	raw := backend.NewMemStore()
	client, err := nexus.NewClient(nexus.ClientConfig{Store: vfs.NewVersionedStore(raw)})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := nexus.NewIdentity("owen")
	if err != nil {
		log.Fatal(err)
	}
	vol, _, err := client.CreateVolume(owner)
	if err != nil {
		log.Fatal(err)
	}

	// Open the database inside the protected volume.
	db, err := kvstore.Open(fsapi.Nexus(vol.FS()), "/appdata/db", kvstore.Options{
		WriteBufferSize: 16 << 10, // small, to force table flushes
	})
	if err != nil {
		log.Fatal(err)
	}

	// A small workload: async puts, one durable (synced) put, reads.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user:%04d", i)
		value := fmt.Sprintf(`{"id":%d,"plan":"pro"}`, i)
		if err := db.Put(key, []byte(value), kvstore.WriteOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Put("checkpoint", []byte("committed"), kvstore.WriteOptions{Sync: true}); err != nil {
		log.Fatal(err)
	}

	v, err := db.Get("user:0042")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point read: user:0042 -> %s\n", v)

	it, err := db.NewIterator(false)
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for it.Next() {
		count++
	}
	fmt.Printf("scan: %d live keys\n", count)
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen: WAL replay + table loading, all through the enclave.
	db2, err := kvstore.Open(fsapi.Nexus(vol.FS()), "/appdata/db", kvstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	v, err = db2.Get("checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reopen: checkpoint -> %s\n", v)

	// What the storage provider holds: ciphertext blobs, no "user:",
	// no JSON, no table structure.
	names, err := raw.List("")
	if err != nil {
		log.Fatal(err)
	}
	total := int64(0)
	for _, n := range names {
		b, err := raw.Get(n)
		if err != nil {
			log.Fatal(err)
		}
		total += int64(len(b))
	}
	fmt.Printf("storage provider view: %d opaque objects, %d bytes, zero plaintext\n",
		len(names), total)
}
