// Command nexus-lint statically checks the repository against the NEXUS
// security invariants (DSN'19 §IV, §VI) that the Go compiler cannot see:
// crypto-grade randomness, the enclave key boundary, AEAD nonce hygiene,
// checked crypto errors, mutex discipline — and, interprocedurally over
// the module call graph, secret-taint flow, *Locked reachability, the
// write-back markDirty invariant, and obs span coverage.
//
// Usage:
//
//	go run ./cmd/nexus-lint [flags] ./...
//
// It loads every package of the enclosing module (arguments are accepted
// for go-tool symmetry; analysis is always whole-module, because the
// cross-package rules need the full call graph), prints findings as
//
//	file:line: [RULE] message
//
// and exits non-zero if any non-baselined finding survives. Flags:
//
//	-rule R1,R2        run only the named rules
//	-json              print a schema-versioned JSON report to stdout
//	-sarif FILE        also write a SARIF 2.1.0 log ("-" for stdout)
//	-baseline FILE     accept legacy findings recorded in FILE
//	                   (default: lint/baseline.json at the module root,
//	                   when present; "none" disables)
//	-write-baseline    regenerate the baseline from current findings
//	-v                 list rules and per-rule counts
//
// Findings can be suppressed with `//lint:ignore RULE reason` on the
// same or preceding line; suppressions are counted in the summary and
// audited — a directive that no longer silences anything is itself a
// finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nexus/internal/lint"
)

// options is the parsed command line, separated from main so flag
// handling is unit-testable.
type options struct {
	verbose       bool
	jsonOut       bool
	sarifPath     string
	rules         []string
	baselinePath  string // "" = auto-detect, "none" = disabled
	writeBaseline bool
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	opts := &options{}
	fs := flag.NewFlagSet("nexus-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&opts.verbose, "v", false, "list rules and per-rule counts")
	fs.BoolVar(&opts.jsonOut, "json", false, "print findings as a schema-versioned JSON report")
	fs.StringVar(&opts.sarifPath, "sarif", "", "write a SARIF 2.1.0 log to `file` (\"-\" for stdout)")
	ruleList := fs.String("rule", "", "comma-separated `rules` to run (default: all)")
	fs.StringVar(&opts.baselinePath, "baseline", "", "baseline `file` of accepted legacy findings (\"none\" disables; default lint/baseline.json when present)")
	fs.BoolVar(&opts.writeBaseline, "write-baseline", false, "regenerate the baseline file from current findings and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nexus-lint [flags] [packages]\n\nRules:\n")
		for _, c := range lint.Checkers() {
			fmt.Fprintf(stderr, "  %-22s %s\n", c.Rule, c.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *ruleList != "" {
		for _, r := range strings.Split(*ruleList, ",") {
			if r = strings.TrimSpace(r); r != "" {
				opts.rules = append(opts.rules, r)
			}
		}
	}
	return opts, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseFlags(args, stderr)
	if err != nil {
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "nexus-lint:", err)
		return 2
	}
	res, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(stderr, "nexus-lint:", err)
		return 2
	}
	if res, err = lint.FilterRules(res, opts.rules); err != nil {
		fmt.Fprintln(stderr, "nexus-lint:", err)
		return 2
	}

	blPath := opts.baselinePath
	if blPath == "" {
		if def := filepath.Join(root, "lint", "baseline.json"); fileExists(def) {
			blPath = def
		}
	}
	if opts.writeBaseline {
		if blPath == "" || blPath == "none" {
			blPath = filepath.Join(root, "lint", "baseline.json")
		}
		if err := os.MkdirAll(filepath.Dir(blPath), 0o755); err != nil {
			fmt.Fprintln(stderr, "nexus-lint:", err)
			return 2
		}
		if err := lint.NewBaseline(root, res).WriteFile(blPath); err != nil {
			fmt.Fprintln(stderr, "nexus-lint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "nexus-lint: wrote %d finding(s) to %s\n", len(res.Findings), blPath)
		return 0
	}

	baselined := 0
	if blPath != "" && blPath != "none" {
		bl, err := lint.LoadBaseline(blPath)
		if err != nil {
			fmt.Fprintln(stderr, "nexus-lint:", err)
			return 2
		}
		var stale []lint.BaselineEntry
		res, baselined, stale = bl.Apply(root, res)
		if opts.verbose {
			for _, s := range stale {
				fmt.Fprintf(stderr, "nexus-lint: baseline entry no longer observed (%d left): %s [%s] %s\n",
					s.Count, s.File, s.Rule, s.Msg)
			}
		}
	}

	if opts.sarifPath != "" {
		if err := writeSARIF(opts.sarifPath, root, res, stdout); err != nil {
			fmt.Fprintln(stderr, "nexus-lint:", err)
			return 2
		}
	}

	if opts.jsonOut {
		if err := lint.NewJSONReport(root, res, baselined).Encode(stdout); err != nil {
			fmt.Fprintln(stderr, "nexus-lint:", err)
			return 2
		}
	} else {
		cwd, _ := os.Getwd()
		for _, f := range res.Findings {
			name := f.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
					name = rel
				}
			}
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", name, f.Pos.Line, f.Rule, f.Msg)
		}
	}
	if opts.verbose {
		counts := make(map[string]int)
		for _, f := range res.Findings {
			counts[f.Rule]++
		}
		for _, c := range lint.Checkers() {
			fmt.Fprintf(stderr, "nexus-lint: %-22s %d finding(s)\n", c.Rule, counts[c.Rule])
		}
	}
	fmt.Fprintf(stderr, "nexus-lint: %d finding(s), %d suppressed, %d baselined\n",
		len(res.Findings), res.Suppressed, baselined)
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

func writeSARIF(path, root string, res *lint.Result, stdout io.Writer) error {
	if path == "-" {
		return lint.EncodeSARIF(stdout, root, res)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lint.EncodeSARIF(f, root, res); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
