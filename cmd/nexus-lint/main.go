// Command nexus-lint statically checks the repository against the NEXUS
// security invariants (DSN'19 §IV, §VI) that the Go compiler cannot see:
// crypto-grade randomness, the enclave key boundary, AEAD nonce hygiene,
// checked crypto errors, and mutex discipline around shared metadata.
//
// Usage:
//
//	go run ./cmd/nexus-lint ./...
//
// It loads every package of the enclosing module (arguments are accepted
// for go-tool symmetry; analysis is always whole-module, because the
// boundary rule is inherently cross-package), prints findings as
//
//	file:line: [RULE] message
//
// and exits non-zero if any finding survives. Findings can be suppressed
// with `//lint:ignore RULE reason` on the same or preceding line;
// suppressions are counted in the summary, never silent.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nexus/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "list rules and per-rule counts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nexus-lint [-v] [packages]\n\nRules:\n")
		for _, c := range lint.Checkers() {
			fmt.Fprintf(os.Stderr, "  %-22s %s\n", c.Rule, c.Doc)
		}
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nexus-lint:", err)
		os.Exit(2)
	}
	res, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nexus-lint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, f := range res.Findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Rule, f.Msg)
	}
	if *verbose {
		counts := make(map[string]int)
		for _, f := range res.Findings {
			counts[f.Rule]++
		}
		for _, c := range lint.Checkers() {
			fmt.Fprintf(os.Stderr, "nexus-lint: %-22s %d finding(s)\n", c.Rule, counts[c.Rule])
		}
	}
	fmt.Fprintf(os.Stderr, "nexus-lint: %d finding(s), %d suppressed\n",
		len(res.Findings), res.Suppressed)
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
