package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nexus/internal/lint"
)

func TestParseFlagsDefaults(t *testing.T) {
	opts, err := parseFlags(nil, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	want := &options{}
	if !reflect.DeepEqual(opts, want) {
		t.Errorf("defaults = %+v", opts)
	}
}

func TestParseFlagsRuleList(t *testing.T) {
	opts, err := parseFlags([]string{"-rule", "secret-taint, span-coverage,", "./..."}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"secret-taint", "span-coverage"}
	if !reflect.DeepEqual(opts.rules, want) {
		t.Errorf("rules = %v, want %v", opts.rules, want)
	}
}

func TestParseFlagsAll(t *testing.T) {
	opts, err := parseFlags([]string{
		"-v", "-json", "-sarif", "out.sarif", "-baseline", "none", "-write-baseline",
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.verbose || !opts.jsonOut || opts.sarifPath != "out.sarif" ||
		opts.baselinePath != "none" || !opts.writeBaseline {
		t.Errorf("parsed = %+v", opts)
	}
}

func TestParseFlagsBadFlag(t *testing.T) {
	var errOut bytes.Buffer
	if _, err := parseFlags([]string{"-no-such-flag"}, &errOut); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestUsageListsEveryRule keeps the -h text in sync with the rule set.
func TestUsageListsEveryRule(t *testing.T) {
	var errOut bytes.Buffer
	_, err := parseFlags([]string{"-h"}, &errOut)
	if err == nil {
		t.Fatal("-h should return flag.ErrHelp")
	}
	for _, c := range lint.Checkers() {
		if !strings.Contains(errOut.String(), c.Rule) {
			t.Errorf("usage does not mention rule %s", c.Rule)
		}
	}
}

// TestSchemaVersionPinned: bumping the schema is an intentional act —
// this test forces whoever does it to also regenerate lint/baseline.json
// (LoadBaseline rejects the old schema) and update this constant.
func TestSchemaVersionPinned(t *testing.T) {
	if lint.ReportSchema != 1 {
		t.Fatalf("ReportSchema = %d; regenerate lint/baseline.json and update this pin", lint.ReportSchema)
	}
	if lint.SARIFVersion != "2.1.0" {
		t.Fatalf("SARIFVersion = %q", lint.SARIFVersion)
	}
}
