// nexus is the command-line client for NEXUS protected volumes: it
// creates volumes on a local or remote store, and reads, writes, and
// administers them through the enclave.
//
// State lives under a home directory (default .nexus-home):
//
//	machine.seed   simulated CPU fuse seed (keeps sealed keys openable)
//	identity.name  username
//	identity.key   Ed25519 private key (hex)
//	volume.id      mounted volume UUID (hex)
//	volume.key     SGX-sealed volume rootkey
//
// Usage:
//
//	nexus [-home dir] [-store dir | -afs host:port]
//	      [-freshness-flat] [-content-defined] <command> [args]
//
// Rollback protection defaults to the Merkle-authenticated namespace
// (DESIGN.md §15); -freshness-flat opts a mount back into the legacy
// flat freshness table. -content-defined stores file contents as
// deduplicated content-defined chunks (DESIGN.md §16).
//
// Commands:
//
//	keygen <name>                create this machine's identity
//	init                         create a new volume owned by the identity
//	ls [path]                    list a directory
//	mkdir <path>                 create a directory (with parents)
//	put <local> <path>           copy a local file into the volume
//	get <path> <local>           copy a volume file out
//	cat <path>                   print a volume file
//	rm <path>                    remove a file or empty directory
//	mv <old> <new>               rename
//	users                        list authorized users
//	useradd <name> <pubkey-hex>  authorize a user (owner only)
//	userdel <name>               revoke a user (owner only)
//	acl-set <dir> <user> <rights>  grant rights (lridwa letters, or
//	                               read/write/all/none)
//	acl-get <dir>                show a directory's ACL
//	trace <command> [args]       run a volume command with tracing on and
//	                             print its span tree and metrics to stderr
//
// Cross-machine rootkey exchange requires a shared attestation service,
// which lives in-process in this simulation; see examples/sharing for
// the full two-machine protocol driven through the library API.
package main

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nexus"
	"nexus/internal/afs"
	"nexus/internal/obs"
	"nexus/internal/uuid"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nexus: %v\n", err)
		os.Exit(1)
	}
}

type cli struct {
	home  string
	store nexus.ObjectStore
	ias   *nexus.AttestationService
	// obs is shared by the AFS client and the enclave so trace mode
	// stitches afs.* RPC spans under the vfs/sgx spans.
	obs *nexus.Obs
	// freshnessFlat opts out of the default Merkle freshness namespace.
	freshnessFlat bool
	// contentDefined enables the deduplicated content-defined chunk
	// store for file contents.
	contentDefined bool
}

func run() error {
	home := flag.String("home", ".nexus-home", "client state directory")
	storeDir := flag.String("store", "", "local object store directory (default <home>/store)")
	afsAddr := flag.String("afs", "", "AFS server address (overrides -store)")
	freshnessFlat := flag.Bool("freshness-flat", false, "use the legacy flat freshness table instead of the default Merkle namespace")
	contentDefined := flag.Bool("content-defined", false, "store file contents as deduplicated content-defined chunks")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return fmt.Errorf("missing command")
	}

	if err := os.MkdirAll(*home, 0o700); err != nil {
		return err
	}
	c := &cli{home: *home, obs: nexus.NewObs(), freshnessFlat: *freshnessFlat, contentDefined: *contentDefined}

	switch {
	case *afsAddr != "":
		client, err := afs.Dial(*afsAddr, afs.ClientConfig{Obs: c.obs})
		if err != nil {
			return fmt.Errorf("connecting to AFS server: %w", err)
		}
		defer client.Close()
		c.store = client
	default:
		dir := *storeDir
		if dir == "" {
			dir = filepath.Join(*home, "store")
		}
		store, err := nexus.NewLocalStore(dir)
		if err != nil {
			return err
		}
		c.store = store
	}

	cmd, rest := args[0], args[1:]
	if cmd == "keygen" {
		return c.keygen(rest)
	}
	if cmd == "init" {
		return c.initVolume()
	}

	traceMode := false
	if cmd == "trace" {
		if len(rest) == 0 {
			return fmt.Errorf("usage: trace <command> [args]")
		}
		traceMode = true
		cmd, rest = rest[0], rest[1:]
	}

	vol, err := c.mount()
	if err != nil {
		return err
	}
	fs := vol.FS()
	if traceMode {
		reg := fs.Enclave().Obs()
		reg.Tracer().Enable()
		defer printTrace(reg)
	}

	switch cmd {
	case "ls":
		p := "/"
		if len(rest) > 0 {
			p = rest[0]
		}
		entries, err := fs.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			kind := "-"
			if e.IsDir {
				kind = "d"
			} else if e.IsSymlink {
				kind = "l"
			}
			fmt.Printf("%s %s\n", kind, e.Name)
		}
		return nil

	case "mkdir":
		if len(rest) != 1 {
			return fmt.Errorf("usage: mkdir <path>")
		}
		return fs.MkdirAll(rest[0])

	case "put":
		if len(rest) != 2 {
			return fmt.Errorf("usage: put <local> <path>")
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		return fs.WriteFile(rest[1], data)

	case "get":
		if len(rest) != 2 {
			return fmt.Errorf("usage: get <path> <local>")
		}
		data, err := fs.ReadFile(rest[0])
		if err != nil {
			return err
		}
		return os.WriteFile(rest[1], data, 0o644)

	case "cat":
		if len(rest) != 1 {
			return fmt.Errorf("usage: cat <path>")
		}
		data, err := fs.ReadFile(rest[0])
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err

	case "rm":
		if len(rest) != 1 {
			return fmt.Errorf("usage: rm <path>")
		}
		return fs.Remove(rest[0])

	case "mv":
		if len(rest) != 2 {
			return fmt.Errorf("usage: mv <old> <new>")
		}
		return fs.Rename(rest[0], rest[1])

	case "users":
		users, err := vol.Users()
		if err != nil {
			return err
		}
		for _, u := range users {
			fmt.Println(u)
		}
		return nil

	case "useradd":
		if len(rest) != 2 {
			return fmt.Errorf("usage: useradd <name> <pubkey-hex>")
		}
		key, err := hex.DecodeString(rest[1])
		if err != nil || len(key) != ed25519.PublicKeySize {
			return fmt.Errorf("invalid public key")
		}
		return vol.AddUser(rest[0], ed25519.PublicKey(key))

	case "userdel":
		if len(rest) != 1 {
			return fmt.Errorf("usage: userdel <name>")
		}
		return vol.RemoveUser(rest[0])

	case "acl-set":
		if len(rest) != 3 {
			return fmt.Errorf("usage: acl-set <dir> <user> <rights>")
		}
		rights, err := nexus.ParseRights(rest[2])
		if err != nil {
			return err
		}
		return vol.SetACL(rest[0], rest[1], rights)

	case "acl-get":
		if len(rest) != 1 {
			return fmt.Errorf("usage: acl-get <dir>")
		}
		acl, err := vol.GetACL(rest[0])
		if err != nil {
			return err
		}
		for user, rights := range acl {
			fmt.Printf("%s: %s\n", user, rights)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printTrace dumps the span trees and latency summaries collected while
// the traced command ran. Output goes to stderr so commands like cat can
// still pipe their payload cleanly.
func printTrace(reg *nexus.Obs) {
	roots := reg.Tracer().Take()
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "trace: no spans recorded")
		return
	}
	fmt.Fprintln(os.Stderr, "trace:")
	obs.FormatTree(os.Stderr, roots)
}

// --- state files ---

func (c *cli) path(name string) string { return filepath.Join(c.home, name) }

func (c *cli) keygen(args []string) error {
	if len(args) != 1 || args[0] == "" {
		return fmt.Errorf("usage: keygen <name>")
	}
	if _, err := os.Stat(c.path("identity.key")); err == nil {
		return fmt.Errorf("identity already exists in %s", c.home)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.path("identity.name"), []byte(args[0]), 0o600); err != nil {
		return err
	}
	if err := os.WriteFile(c.path("identity.key"), []byte(hex.EncodeToString(priv)), 0o600); err != nil {
		return err
	}
	seed := make([]byte, 32)
	if _, err := rand.Read(seed); err != nil {
		return err
	}
	if err := os.WriteFile(c.path("machine.seed"), []byte(hex.EncodeToString(seed)), 0o600); err != nil {
		return err
	}
	fmt.Printf("created identity %q\npublic key: %s\n", args[0], hex.EncodeToString(pub))
	return nil
}

func (c *cli) identity() (nexus.Identity, error) {
	nameBytes, err := os.ReadFile(c.path("identity.name"))
	if err != nil {
		return nexus.Identity{}, fmt.Errorf("no identity; run `nexus keygen <name>` first: %w", err)
	}
	keyHex, err := os.ReadFile(c.path("identity.key"))
	if err != nil {
		return nexus.Identity{}, err
	}
	priv, err := hex.DecodeString(strings.TrimSpace(string(keyHex)))
	if err != nil || len(priv) != ed25519.PrivateKeySize {
		return nexus.Identity{}, fmt.Errorf("corrupt identity key")
	}
	key := ed25519.PrivateKey(priv)
	return nexus.Identity{
		Name:       string(nameBytes),
		PrivateKey: key,
		PublicKey:  key.Public().(ed25519.PublicKey),
	}, nil
}

func (c *cli) newClient() (*nexus.Client, error) {
	seedHex, err := os.ReadFile(c.path("machine.seed"))
	if err != nil {
		return nil, fmt.Errorf("no machine seed; run `nexus keygen` first: %w", err)
	}
	seed, err := hex.DecodeString(strings.TrimSpace(string(seedHex)))
	if err != nil {
		return nil, fmt.Errorf("corrupt machine seed")
	}
	return nexus.NewClient(nexus.ClientConfig{
		Store:          c.store,
		PlatformSeed:   seed,
		Obs:            c.obs,
		FreshnessFlat:  c.freshnessFlat,
		ContentDefined: c.contentDefined,
		// One command per process: batching buys nothing and deferred
		// metadata would be lost at exit, so flush eagerly.
		WritebackMode: "off",
	})
}

func (c *cli) initVolume() error {
	id, err := c.identity()
	if err != nil {
		return err
	}
	client, err := c.newClient()
	if err != nil {
		return err
	}
	vol, sealed, err := client.CreateVolume(id)
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.path("volume.key"), sealed, 0o600); err != nil {
		return err
	}
	volID := vol.ID()
	if err := os.WriteFile(c.path("volume.id"), []byte(volID.String()), 0o600); err != nil {
		return err
	}
	fmt.Printf("created volume %s owned by %s\n", volID, id.Name)
	return nil
}

func (c *cli) mount() (*nexus.Volume, error) {
	id, err := c.identity()
	if err != nil {
		return nil, err
	}
	sealed, err := os.ReadFile(c.path("volume.key"))
	if err != nil {
		return nil, fmt.Errorf("no volume; run `nexus init` first: %w", err)
	}
	volIDHex, err := os.ReadFile(c.path("volume.id"))
	if err != nil {
		return nil, err
	}
	volID, err := uuid.Parse(strings.TrimSpace(string(volIDHex)))
	if err != nil {
		return nil, fmt.Errorf("corrupt volume id: %w", err)
	}
	client, err := c.newClient()
	if err != nil {
		return nil, err
	}
	return client.Mount(id, sealed, volID)
}
