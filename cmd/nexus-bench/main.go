// nexus-bench regenerates the tables and figures of the NEXUS evaluation
// (DSN'19 §VII) on the simulated testbed.
//
// Usage:
//
//	nexus-bench [-exp all|fileio|dirops|gitclone|db|apps|revoke|sharing]
//	            [-scale N] [-runs N] [-rtt duration] [-bw MBps]
//	            [-entries N] [-transition duration] [-no-cache]
//
// -scale divides workload file *sizes* (never counts) so paper-scale
// experiments (-scale 1) and quick runs (-scale 1024) use identical
// operation mixes. The defaults complete in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nexus/internal/bench"
	"nexus/internal/netsim"
	"nexus/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nexus-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: all|fileio|dirops|gitclone|db|apps|revoke|sharing|ablation")
	scale := flag.Int64("scale", 64, "divide workload file sizes by this factor (1 = paper scale)")
	runs := flag.Int("runs", 3, "repetitions averaged per measurement")
	rtt := flag.Duration("rtt", 500*time.Microsecond, "simulated network round-trip time")
	bw := flag.Int64("bw", 125, "simulated bandwidth in MiB/s (0 = unlimited)")
	entries := flag.Int("entries", 2000, "database benchmark entry count")
	transition := flag.Duration("transition", 4*time.Microsecond, "simulated enclave transition cost")
	noCache := flag.Bool("no-cache", false, "disable the in-enclave metadata cache (ablation)")
	dirCounts := flag.String("dirs", "1024,2048,4096,8192", "comma-separated file counts for dirops")
	flag.Parse()

	cfg := bench.Config{
		Profile:              netsim.Profile{RTT: *rtt, Bandwidth: *bw << 20},
		TransitionCost:       *transition,
		Runs:                 *runs,
		Scale:                *scale,
		DisableMetadataCache: *noCache,
	}
	if *bw == 0 {
		cfg.Profile.Bandwidth = 0
	}

	fmt.Printf("NEXUS evaluation harness — rtt=%v bw=%dMiB/s scale=%d runs=%d transition=%v cache=%v\n\n",
		*rtt, *bw, *scale, *runs, *transition, !*noCache)

	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fileio") {
		rows, err := bench.FileIO(env, []int{1, 2, 16, 64})
		if err != nil {
			return fmt.Errorf("fileio: %w", err)
		}
		bench.PrintFileIO(os.Stdout, rows)
	}
	if want("dirops") {
		var counts []int
		for _, s := range splitCSV(*dirCounts) {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
				return fmt.Errorf("bad -dirs value %q", s)
			}
			counts = append(counts, n)
		}
		rows, err := bench.DirOps(env, counts)
		if err != nil {
			return fmt.Errorf("dirops: %w", err)
		}
		bench.PrintDirOps(os.Stdout, rows)
	}
	if want("gitclone") {
		rows, err := bench.GitClone(env, []workload.TreeSpec{workload.Redis, workload.Julia, workload.NodeJS})
		if err != nil {
			return fmt.Errorf("gitclone: %w", err)
		}
		bench.PrintGitClone(os.Stdout, rows)
	}
	if want("db") {
		rows, err := bench.Database(env, *entries)
		if err != nil {
			return fmt.Errorf("db: %w", err)
		}
		bench.PrintDatabase(os.Stdout, rows)
	}
	if want("apps") {
		rows, err := bench.LinuxApps(env, []workload.FlatSpec{workload.LFSD, workload.MFMD, workload.SFLD})
		if err != nil {
			return fmt.Errorf("apps: %w", err)
		}
		bench.PrintLinuxApps(os.Stdout, rows)
	}
	if want("revoke") {
		rows, err := bench.Revocation(env, []workload.FlatSpec{workload.SFLD, workload.LFSD})
		if err != nil {
			return fmt.Errorf("revoke: %w", err)
		}
		bench.PrintRevocation(os.Stdout, rows)
	}
	if want("sharing") {
		rows, err := bench.Sharing(env)
		if err != nil {
			return fmt.Errorf("sharing: %w", err)
		}
		bench.PrintSharing(os.Stdout, rows)
	}
	if *exp == "ablation" {
		const files = 512
		rows, err := bench.Ablation(cfg, files)
		if err != nil {
			return fmt.Errorf("ablation: %w", err)
		}
		bench.PrintAblation(os.Stdout, files, rows)
	}
	return nil
}

func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
