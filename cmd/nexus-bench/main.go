// nexus-bench regenerates the tables and figures of the NEXUS evaluation
// (DSN'19 §VII) on the simulated testbed.
//
// Usage:
//
//	nexus-bench [-exp all|fileio|dirops|gitclone|db|apps|revoke|revoke-sweep|sharing|crypto|metadata|freshness|dedup]
//	            [-scale N] [-runs N] [-rtt duration] [-bw MBps]
//	            [-entries N] [-transition duration] [-no-cache]
//	            [-workers N] [-json] [-out FILE] [-crypto-workers LIST]
//	            [-crypto-bytes N] [-members LIST] [-groupmode tree|flat|both]
//	            [-objects LIST] [-freshmode merkle|flat|both]
//
// -exp also accepts a comma-separated list (e.g. -exp fileio,crypto) so
// one report — and therefore one benchdiff gate — can cover several
// experiments.
//
// -scale divides workload file *sizes* (never counts) so paper-scale
// experiments (-scale 1) and quick runs (-scale 1024) use identical
// operation mixes. The defaults complete in a few minutes. The crypto
// experiment's buffer follows -scale too unless -crypto-bytes pins it;
// pinning matters when the rest of the run is scaled down hard, because
// a buffer under one chunk (1 MiB) leaves the worker sweep nothing to
// parallelize.
//
// -json additionally writes a schema-versioned machine-readable report
// (ns/op, MB/s, allocs per experiment) to BENCH_<rev>.json — or -out —
// for cmd/nexus-benchdiff and the CI regression gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"nexus/internal/bench"
	"nexus/internal/netsim"
	"nexus/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nexus-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: all|fileio|dirops|gitclone|db|apps|revoke|revoke-sweep|sharing|crypto|metadata|freshness|dedup|ablation")
	scale := flag.Int64("scale", 64, "divide workload file sizes by this factor (1 = paper scale)")
	runs := flag.Int("runs", 3, "repetitions averaged per measurement")
	rtt := flag.Duration("rtt", 500*time.Microsecond, "simulated network round-trip time")
	bw := flag.Int64("bw", 125, "simulated bandwidth in MiB/s (0 = unlimited)")
	entries := flag.Int("entries", 2000, "database benchmark entry count")
	transition := flag.Duration("transition", 4*time.Microsecond, "simulated enclave transition cost")
	noCache := flag.Bool("no-cache", false, "disable the in-enclave metadata cache (ablation)")
	dirCounts := flag.String("dirs", "1024,2048,4096,8192", "comma-separated file counts for dirops")
	workers := flag.Int("workers", 0, "chunk-crypto fan-out inside the enclave pipeline (0 = auto, 1 = serial)")
	jsonOut := flag.Bool("json", false, "also write a machine-readable report (see -out)")
	outPath := flag.String("out", "", "report path for -json (default BENCH_<rev>.json)")
	cryptoWorkers := flag.String("crypto-workers", "1,2,4,8", "comma-separated worker counts for the crypto experiment")
	cryptoBytes := flag.Int64("crypto-bytes", 0, "chunk-crypto buffer size in bytes (0 = 16MiB divided by -scale)")
	members := flag.String("members", "1000,10000,100000,1000000", "comma-separated membership sizes for the revoke-sweep experiment")
	groupMode := flag.String("groupmode", "both", "revoke-sweep structures: tree|flat|both (flat is the O(n) re-wrap baseline)")
	objects := flag.String("objects", "1000,10000,100000,1000000", "comma-separated namespace sizes for the freshness experiment")
	freshMode := flag.String("freshmode", "both", "freshness schemes: merkle|flat|both (flat is the O(n) version-table baseline)")
	flag.Parse()

	cfg := bench.Config{
		Profile:              netsim.Profile{RTT: *rtt, Bandwidth: *bw << 20},
		TransitionCost:       *transition,
		Runs:                 *runs,
		Scale:                *scale,
		CryptoWorkers:        *workers,
		DisableMetadataCache: *noCache,
	}
	if *bw == 0 {
		cfg.Profile.Bandwidth = 0
	}

	fmt.Printf("NEXUS evaluation harness — rtt=%v bw=%dMiB/s scale=%d runs=%d transition=%v cache=%v\n\n",
		*rtt, *bw, *scale, *runs, *transition, !*noCache)

	var report *bench.Report
	if *jsonOut {
		report = bench.NewReport(gitRev(), *scale)
	}

	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()

	want := func(name string) bool {
		for _, e := range splitCSV(*exp) {
			if e == "all" || e == name {
				return true
			}
		}
		return false
	}

	if want("fileio") {
		rows, err := bench.FileIO(env, []int{1, 2, 16, 64})
		if err != nil {
			return fmt.Errorf("fileio: %w", err)
		}
		bench.PrintFileIO(os.Stdout, rows)
		if report != nil {
			for _, r := range rows {
				size := int64(r.SizeMB) << 20 / *scale
				if size < 1 {
					size = 1
				}
				// The workload writes the file and reads it back, so
				// 2×size bytes cross the crypto pipeline per op.
				report.Add("fileio", fmt.Sprintf("write_read_%dMB", r.SizeMB), bench.Metric{
					NsPerOp:  float64(r.Nexus.Nanoseconds()),
					MBPerSec: float64(2*size) / r.Nexus.Seconds() / (1 << 20),
				})
			}
			// Per-operation latency distributions from the stack's
			// observability registry, aggregated over every size above.
			for _, name := range []string{"vfs_write_seconds", "vfs_read_seconds"} {
				if m := bench.LatencyMetric(env.Obs.Snapshot(name)); m.NsPerOp > 0 {
					report.Add("fileio", name, m)
				}
			}
		}
	}
	if want("dirops") {
		var counts []int
		for _, s := range splitCSV(*dirCounts) {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
				return fmt.Errorf("bad -dirs value %q", s)
			}
			counts = append(counts, n)
		}
		rows, err := bench.DirOps(env, counts)
		if err != nil {
			return fmt.Errorf("dirops: %w", err)
		}
		bench.PrintDirOps(os.Stdout, rows)
	}
	if want("gitclone") {
		rows, err := bench.GitClone(env, []workload.TreeSpec{workload.Redis, workload.Julia, workload.NodeJS})
		if err != nil {
			return fmt.Errorf("gitclone: %w", err)
		}
		bench.PrintGitClone(os.Stdout, rows)
	}
	if want("db") {
		rows, err := bench.Database(env, *entries)
		if err != nil {
			return fmt.Errorf("db: %w", err)
		}
		bench.PrintDatabase(os.Stdout, rows)
	}
	if want("apps") {
		rows, err := bench.LinuxApps(env, []workload.FlatSpec{workload.LFSD, workload.MFMD, workload.SFLD})
		if err != nil {
			return fmt.Errorf("apps: %w", err)
		}
		bench.PrintLinuxApps(os.Stdout, rows)
	}
	if want("revoke") {
		rows, err := bench.Revocation(env, []workload.FlatSpec{workload.SFLD, workload.LFSD})
		if err != nil {
			return fmt.Errorf("revoke: %w", err)
		}
		bench.PrintRevocation(os.Stdout, rows)
	}
	if want("revoke-sweep") {
		var counts []int
		for _, s := range splitCSV(*members) {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 4 {
				return fmt.Errorf("bad -members value %q", s)
			}
			counts = append(counts, n)
		}
		rows, err := bench.MembershipSweep(counts, *groupMode, *runs)
		if err != nil {
			return fmt.Errorf("revoke-sweep: %w", err)
		}
		bench.PrintMembership(os.Stdout, rows)
		if report != nil {
			report.Experiments["revoke_membership"] = bench.MembershipMetrics(rows)
		}
	}
	if want("freshness") {
		var counts []int
		for _, s := range splitCSV(*objects) {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 2 {
				return fmt.Errorf("bad -objects value %q", s)
			}
			counts = append(counts, n)
		}
		rows, err := bench.FreshnessSweep(counts, *freshMode, *runs*100)
		if err != nil {
			return fmt.Errorf("freshness: %w", err)
		}
		bench.PrintFreshness(os.Stdout, rows)
		if report != nil {
			report.Experiments["freshness_scale"] = bench.FreshnessMetrics(rows)
		}
	}
	if want("dedup") {
		rows, err := bench.Dedup(cfg)
		if err != nil {
			return fmt.Errorf("dedup: %w", err)
		}
		bench.PrintDedup(os.Stdout, rows)
		if report != nil {
			report.Experiments["dedup"] = bench.DedupMetrics(rows)
		}
	}
	if want("sharing") {
		rows, err := bench.Sharing(env)
		if err != nil {
			return fmt.Errorf("sharing: %w", err)
		}
		bench.PrintSharing(os.Stdout, rows)
	}
	if want("crypto") {
		var workers []int
		for _, s := range splitCSV(*cryptoWorkers) {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 1 {
				return fmt.Errorf("bad -crypto-workers value %q", s)
			}
			workers = append(workers, n)
		}
		size := *cryptoBytes
		if size <= 0 {
			size = int64(16) << 20 / *scale
		}
		rows, err := bench.ChunkCrypto(size, cfg.ChunkSize, workers)
		if err != nil {
			return fmt.Errorf("crypto: %w", err)
		}
		bench.PrintChunkCrypto(os.Stdout, rows)
		if report != nil {
			report.Experiments["crypto"] = bench.ChunkCryptoMetrics(rows)
		}
	}
	if want("metadata") {
		const files = 128
		rows, err := bench.Metadata(cfg, files)
		if err != nil {
			return fmt.Errorf("metadata: %w", err)
		}
		bench.PrintMetadata(os.Stdout, rows)
		if report != nil {
			report.Experiments["metadata"] = bench.MetadataMetrics(rows)
		}
	}
	if *exp == "ablation" {
		const files = 512
		rows, err := bench.Ablation(cfg, files)
		if err != nil {
			return fmt.Errorf("ablation: %w", err)
		}
		bench.PrintAblation(os.Stdout, files, rows)
	}

	if report != nil {
		path := *outPath
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", report.Rev)
		}
		if err := report.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// gitRev names the report after the checked-out revision; outside a git
// checkout (or without git) reports are stamped "dev".
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "dev"
	}
	return rev
}

func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
