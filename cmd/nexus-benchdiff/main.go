// nexus-benchdiff compares two machine-readable bench reports written
// by `nexus-bench -json` and exits non-zero when the current run
// regressed beyond tolerance. It is the CI perf gate:
//
//	nexus-benchdiff -baseline bench/baseline.json -current BENCH_abc1234.json
//
// A metric regresses when its ns/op exceeds the baseline by more than
// -tolerance (fractional; default 0.2 = 20%), or when a baseline metric
// is missing from the current report.
package main

import (
	"flag"
	"fmt"
	"os"

	"nexus/internal/bench"
	"nexus/internal/bench/compare"
)

func main() {
	baseline := flag.String("baseline", "", "baseline report (required)")
	current := flag.String("current", "", "current report (required)")
	tolerance := flag.Float64("tolerance", 0.2, "allowed fractional slowdown before failing")
	flag.Parse()

	if err := run(*baseline, *current, *tolerance); err != nil {
		fmt.Fprintf(os.Stderr, "nexus-benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(baselinePath, currentPath string, tolerance float64) error {
	if baselinePath == "" || currentPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	base, err := bench.LoadReport(baselinePath)
	if err != nil {
		return err
	}
	cur, err := bench.LoadReport(currentPath)
	if err != nil {
		return err
	}

	deltas, regressed, err := compare.Diff(base, cur, tolerance)
	if err != nil {
		return err
	}
	fmt.Printf("baseline %s (%d cpus) vs current %s (%d cpus), tolerance +%.0f%%\n",
		base.Rev, base.CPUs, cur.Rev, cur.CPUs, tolerance*100)
	compare.Format(os.Stdout, deltas, tolerance)
	if regressed {
		return fmt.Errorf("performance regression beyond +%.0f%% tolerance", tolerance*100)
	}
	fmt.Println("no regressions")
	return nil
}
