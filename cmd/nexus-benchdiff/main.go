// nexus-benchdiff compares two machine-readable bench reports written
// by `nexus-bench -json` and exits non-zero when the current run
// regressed beyond tolerance. It is the CI perf gate:
//
//	nexus-benchdiff -baseline bench/baseline.json -current BENCH_abc1234.json
//
// Three metrics are gated per experiment entry: ns/op may not rise
// beyond -tolerance (default 0.2 = +20%), allocs/op may not rise
// beyond -allocs-tolerance (default 0.1 = +10%), and MB/s may not drop
// beyond -mbs-tolerance (default 0.25 = −25%). A baseline metric
// missing from the current report also fails. Reports stamped with
// differing CPU counts or architectures are refused — the parallel
// chunk-crypto figures are not comparable — unless -allow-env-mismatch
// is passed.
//
// -min-speedup-w4 additionally gates the current report alone: every
// "<op>_w1"/"<op>_w4" MB/s pair must show the w4 column at least that
// many times faster (the multi-core CI leg passes 1.5). The check is
// skipped on machines with fewer than 4 CPUs.
package main

import (
	"flag"
	"fmt"
	"os"

	"nexus/internal/bench"
	"nexus/internal/bench/compare"
)

func main() {
	baseline := flag.String("baseline", "", "baseline report (required)")
	current := flag.String("current", "", "current report (required)")
	tolerance := flag.Float64("tolerance", 0.2, "allowed fractional ns/op slowdown before failing")
	allocsTol := flag.Float64("allocs-tolerance", compare.DefaultAllocsTolerance, "allowed fractional allocs/op rise before failing")
	mbsTol := flag.Float64("mbs-tolerance", compare.DefaultMBsTolerance, "allowed fractional MB/s drop before failing")
	allowEnv := flag.Bool("allow-env-mismatch", false, "diff reports from differing cpus/goarch anyway (numbers are apples-to-oranges)")
	minSpeedup := flag.Float64("min-speedup-w4", 0, "require w4 MB/s ≥ this multiple of w1 in the current report (0 = off; skipped under 4 cpus)")
	flag.Parse()

	opts := compare.Options{
		Tolerance:        *tolerance,
		AllocsTolerance:  *allocsTol,
		MBsTolerance:     *mbsTol,
		AllowEnvMismatch: *allowEnv,
	}
	if err := run(*baseline, *current, opts, *minSpeedup); err != nil {
		fmt.Fprintf(os.Stderr, "nexus-benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(baselinePath, currentPath string, opts compare.Options, minSpeedup float64) error {
	if baselinePath == "" || currentPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	base, err := bench.LoadReport(baselinePath)
	if err != nil {
		return err
	}
	cur, err := bench.LoadReport(currentPath)
	if err != nil {
		return err
	}

	deltas, regressed, err := compare.DiffOpts(base, cur, opts)
	if err != nil {
		return err
	}
	fmt.Printf("baseline %s (%d cpus, %s) vs current %s (%d cpus, %s)\n",
		base.Rev, base.CPUs, base.GOARCH, cur.Rev, cur.CPUs, cur.GOARCH)
	fmt.Printf("gates: ns/op +%.0f%%, allocs/op +%.0f%%, MB/s -%.0f%%\n",
		opts.Tolerance*100, opts.AllocsTolerance*100, opts.MBsTolerance*100)
	compare.Format(os.Stdout, deltas, opts)

	if minSpeedup > 0 {
		checked, err := compare.CheckSpeedup(cur, minSpeedup)
		switch {
		case err != nil:
			return err
		case !checked:
			fmt.Printf("speedup gate skipped: current report ran with %d cpus (need 4)\n", cur.CPUs)
		default:
			fmt.Printf("speedup gate passed: w4 ≥ %.2fx w1 MB/s\n", minSpeedup)
		}
	}
	if regressed {
		return fmt.Errorf("performance regression beyond tolerance (ns/op +%.0f%%, allocs/op +%.0f%%, MB/s -%.0f%%)",
			opts.Tolerance*100, opts.AllocsTolerance*100, opts.MBsTolerance*100)
	}
	fmt.Println("no regressions")
	return nil
}
