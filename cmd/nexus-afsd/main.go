// nexus-afsd runs the AFS-like file server that NEXUS volumes (and the
// plain baseline) stack on. It is the untrusted storage service of the
// paper's threat model: it sees only encrypted objects with obfuscated
// names.
//
// Usage:
//
//	nexus-afsd [-addr host:port] [-dir path]
//
// With -dir, objects persist to a local directory; otherwise the server
// is memory-backed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nexus/internal/afs"
	"nexus/internal/backend"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	dir := flag.String("dir", "", "persist objects to this directory (empty = in-memory)")
	flag.Parse()

	var store backend.Store
	if *dir != "" {
		ds, err := backend.NewDirStore(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexus-afsd: %v\n", err)
			os.Exit(1)
		}
		store = ds
		log.Printf("nexus-afsd: persisting to %s", *dir)
	} else {
		store = backend.NewMemStore()
		log.Printf("nexus-afsd: in-memory store")
	}

	srv := afs.NewServer(store)
	srv.SetLogger(log.Printf)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "nexus-afsd: %v\n", err)
		os.Exit(1)
	}
}
