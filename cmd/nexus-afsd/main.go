// nexus-afsd runs the AFS-like file server that NEXUS volumes (and the
// plain baseline) stack on. It is the untrusted storage service of the
// paper's threat model: it sees only encrypted objects with obfuscated
// names.
//
// Usage:
//
//	nexus-afsd [-addr host:port] [-dir path] [-metrics-addr host:port]
//
// With -dir, objects persist to a local directory; otherwise the server
// is memory-backed. With -metrics-addr, an HTTP endpoint serves
// Prometheus text metrics at /metrics, expvar JSON at /debug/vars, and
// the standard pprof profiles under /debug/pprof/.
//
// Clients mount volumes with Merkle-authenticated freshness by default
// (DESIGN.md §15); the server needs no cooperation for it — rollback
// proofs are ordinary objects — and legacy flat-table mounts
// (`nexus -freshness-flat`) keep working against the same server.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"nexus/internal/afs"
	"nexus/internal/backend"
	"nexus/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	dir := flag.String("dir", "", "persist objects to this directory (empty = in-memory)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (empty = disabled)")
	flag.Parse()

	var store backend.Store
	if *dir != "" {
		ds, err := backend.NewDirStore(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexus-afsd: %v\n", err)
			os.Exit(1)
		}
		store = ds
		log.Printf("nexus-afsd: persisting to %s", *dir)
	} else {
		store = backend.NewMemStore()
		log.Printf("nexus-afsd: in-memory store")
	}

	srv := afs.NewServer(store)
	srv.SetLogger(log.Printf)

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.SetObs(reg)
		expvar.Publish("nexus", expvar.Func(reg.ExpvarFunc()))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, observabilityMux(reg)); err != nil {
				log.Printf("nexus-afsd: metrics endpoint: %v", err)
			}
		}()
		log.Printf("nexus-afsd: observability on http://%s/metrics", *metricsAddr)
	}

	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "nexus-afsd: %v\n", err)
		os.Exit(1)
	}
}

// observabilityMux assembles the diagnostics endpoint on a private mux:
// the default mux is avoided so importing net/http/pprof cannot leak
// profiles onto any other listener the process might open.
func observabilityMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
